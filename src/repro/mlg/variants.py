"""Server variant profiles: Minecraft (vanilla), Forge, PaperMC (§5.1.1).

Each profile encodes the engineering differences the paper documents:

* **vanilla** — the Mojang reference server; the cost baseline.
* **forge** — vanilla plus mod-loader indirection: every operation pays an
  event-bus/hook overhead, entities slightly more (capability lookups).
* **papermc** — the performance fork (Appendix A): rewritten entity
  handler, TNT-explosion optimizations, redstone improvements, async chat
  on a dedicated thread, item-stack merging, more work moved off the main
  thread (higher parallel fraction) at the price of more threads competing
  for CPU (higher background load, which burns t3 burst credits faster).

Costs are simulated microseconds per counted operation.  They were
calibrated so the workload→tick-duration shapes match the paper's figures,
not to match any absolute JVM timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType

from repro.mlg.workreport import Op

__all__ = [
    "VariantProfile",
    "VANILLA",
    "FORGE",
    "PAPERMC",
    "VARIANTS",
    "get_variant",
]

#: Baseline (vanilla) cost per operation, in simulated microseconds.
_BASE_COSTS: dict[str, float] = {
    Op.TICK_FIXED: 350.0,
    Op.BLOCK_ADD_REMOVE: 2.2,
    Op.BLOCK_UPDATE: 1.0,
    Op.LIGHTING: 0.5,
    # A fluid cell update is an order pricier than a generic block
    # update: the engine re-reads the full neighborhood and runs the
    # slope/support search before deciding where to spread.
    Op.FLUID: 14.0,
    Op.GROWTH: 0.7,
    Op.REDSTONE: 1.15,
    Op.ENTITY_UPDATE: 80.0,
    Op.ITEM_UPDATE: 11.0,
    Op.TNT_UPDATE: 12.0,
    Op.COLLISION_PAIR: 2.0,
    Op.EXPLOSION_RAY: 0.7,
    Op.PATHFIND_NODE: 1.4,
    Op.SPAWN_ATTEMPT: 3.0,
    Op.SPAWN_SCAN: 55.0,
    Op.CHUNK_GEN: 950.0,
    # Reading a chunk back from a region file: seek + inflate (~66 KB
    # raw per chunk) + deserialize + relight.  An order cheaper than
    # generating it, an order pricier than serving it from memory.
    Op.CHUNK_LOAD: 260.0,
    # Writing one dirty chunk during an autosave: deflate + region
    # read-modify-write, amortized across the chunks of a save batch.
    Op.CHUNK_SAVE: 210.0,
    # Attaching an already-resident chunk to a player view: no disk and
    # no generation, but the chunk-data packet is serialized and
    # compressed per send — the same 140 µs the pre-persistence model
    # charged this path (as CHUNK_LOAD), keeping fixed-seed runs without
    # disk IO bit-identical with the seed simulation.
    Op.CHUNK_VIEW: 140.0,
    Op.CHUNK_TICK: 30.0,
    Op.PLAYER_ACTION: 5.0,
    Op.CHAT: 25.0,
    Op.PACKET: 0.45,
    Op.BYTES_OUT: 0.0012,
}


def _scaled(multipliers: dict[str, float], overall: float = 1.0) -> dict[str, float]:
    """Derive a cost table from the baseline with per-op multipliers."""
    return {
        op: base * multipliers.get(op, 1.0) * overall
        for op, base in _BASE_COSTS.items()
    }


@dataclass(frozen=True)
class VariantProfile:
    """Performance personality of one MLG server implementation."""

    name: str
    display_name: str
    cost_table: MappingProxyType
    #: Amdahl parallelizable fraction of tick work.
    parallel_fraction: float
    #: Chat handled on a dedicated async thread (PaperMC)?
    async_chat: bool
    #: Merge co-located item entities into stacks (PaperMC)?
    merge_items: bool
    #: Entity movement packets sent every N ticks (PaperMC batches).
    entity_broadcast_interval: int
    #: OS threads the process runs (reported by the system collector).
    thread_count: int
    #: Extra CPU fraction consumed by background threads — burns burstable
    #: cloud credits even when the tick thread is idle.
    background_cpu_fraction: float
    #: Relative allocation/GC pressure per live entity and rule update
    #: (PaperMC's "limited per-thread cache duplication" allocates less).
    gc_factor: float

    def cost_of(self, op: str) -> float:
        return self.cost_table.get(op, 0.0)


VANILLA = VariantProfile(
    name="vanilla",
    display_name="Minecraft",
    cost_table=MappingProxyType(_scaled({})),
    parallel_fraction=0.18,
    async_chat=False,
    merge_items=False,
    entity_broadcast_interval=1,
    thread_count=26,
    background_cpu_fraction=0.05,
    gc_factor=1.0,
)

FORGE = VariantProfile(
    name="forge",
    display_name="Forge",
    cost_table=MappingProxyType(
        _scaled(
            {
                Op.ENTITY_UPDATE: 1.22,
                Op.ITEM_UPDATE: 1.18,
                Op.TNT_UPDATE: 1.2,
                Op.TICK_FIXED: 1.3,
            },
            overall=1.06,
        )
    ),
    parallel_fraction=0.16,
    async_chat=False,
    merge_items=False,
    entity_broadcast_interval=1,
    thread_count=31,
    background_cpu_fraction=0.07,
    gc_factor=1.15,
)

PAPERMC = VariantProfile(
    name="papermc",
    display_name="PaperMC",
    cost_table=MappingProxyType(
        _scaled(
            {
                Op.ENTITY_UPDATE: 0.42,
                Op.ITEM_UPDATE: 0.45,
                Op.TNT_UPDATE: 0.4,
                Op.COLLISION_PAIR: 0.35,
                Op.EXPLOSION_RAY: 0.16,
                Op.REDSTONE: 0.55,
                Op.LIGHTING: 0.65,
                Op.PATHFIND_NODE: 0.6,
                Op.SPAWN_ATTEMPT: 0.8,
                Op.SPAWN_SCAN: 0.55,
                Op.CHUNK_GEN: 0.8,
                # Paper's async chunk system moves most chunk IO off the
                # main thread; only the hand-off cost hits the tick.
                Op.CHUNK_LOAD: 0.55,
                Op.CHUNK_SAVE: 0.5,
            }
        )
    ),
    parallel_fraction=0.42,
    async_chat=True,
    merge_items=True,
    entity_broadcast_interval=2,
    thread_count=43,
    background_cpu_fraction=0.32,
    gc_factor=0.35,
)

VARIANTS: dict[str, VariantProfile] = {
    "vanilla": VANILLA,
    "minecraft": VANILLA,
    "forge": FORGE,
    "papermc": PAPERMC,
    "paper": PAPERMC,
}


def get_variant(name: str) -> VariantProfile:
    """Resolve a variant by (case-insensitive) name or alias."""
    try:
        return VARIANTS[name.lower()]
    except KeyError:
        known = sorted(set(VARIANTS))
        raise ValueError(
            f"unknown MLG variant {name!r}; known: {', '.join(known)}"
        ) from None
