"""Block registry: the vocabulary of the voxel world.

Block ids are small ints stored in numpy ``uint8`` chunk arrays.  The
registry maps each id to its static properties (solidity, opacity, light
emission, gravity, redstone role) used by the terrain-simulation engines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Block",
    "BlockSpec",
    "spec",
    "is_solid",
    "is_opaque",
    "BLOCK_SPECS",
    "SOLID_LUT",
    "OPAQUE_LUT",
    "LIGHT_EMISSION_LUT",
]


class Block:
    """Block id constants."""

    AIR = 0
    STONE = 1
    DIRT = 2
    GRASS = 3
    SAND = 4
    GRAVEL = 5
    BEDROCK = 6
    WATER_SOURCE = 7
    WATER_FLOW = 8
    LAVA = 9
    WOOD = 10
    LEAVES = 11
    COBBLESTONE = 12
    GLASS = 13
    OBSIDIAN = 14
    TNT = 15
    KELP = 16
    CROP = 17
    SAPLING = 18
    TORCH = 19
    REDSTONE_WIRE = 20
    REDSTONE_TORCH = 21
    REDSTONE_BLOCK = 22
    REPEATER = 23
    OBSERVER = 24
    PISTON = 25
    PISTON_HEAD = 26
    LEVER = 27
    HOPPER = 28
    CHEST = 29
    SLAB = 30
    ICE = 31
    MAGMA = 32

    ALL = tuple(range(33))


@dataclass(frozen=True)
class BlockSpec:
    """Static properties of one block type."""

    name: str
    solid: bool = True
    opaque: bool = True
    light_emission: int = 0
    gravity: bool = False
    fluid: bool = False
    redstone_component: bool = False
    blast_resistance: float = 5.0
    drops_item: bool = True


BLOCK_SPECS: dict[int, BlockSpec] = {
    Block.AIR: BlockSpec("air", solid=False, opaque=False, drops_item=False),
    Block.STONE: BlockSpec("stone", blast_resistance=6.0),
    Block.DIRT: BlockSpec("dirt", blast_resistance=2.5),
    Block.GRASS: BlockSpec("grass", blast_resistance=2.5),
    Block.SAND: BlockSpec("sand", gravity=True, blast_resistance=2.5),
    Block.GRAVEL: BlockSpec("gravel", gravity=True, blast_resistance=2.5),
    Block.BEDROCK: BlockSpec(
        "bedrock", blast_resistance=3_600_000.0, drops_item=False
    ),
    Block.WATER_SOURCE: BlockSpec(
        "water_source",
        solid=False,
        opaque=False,
        fluid=True,
        blast_resistance=500.0,
        drops_item=False,
    ),
    Block.WATER_FLOW: BlockSpec(
        "water_flow",
        solid=False,
        opaque=False,
        fluid=True,
        blast_resistance=500.0,
        drops_item=False,
    ),
    Block.LAVA: BlockSpec(
        "lava",
        solid=False,
        opaque=False,
        fluid=True,
        light_emission=15,
        blast_resistance=500.0,
        drops_item=False,
    ),
    Block.WOOD: BlockSpec("wood", blast_resistance=10.0),
    Block.LEAVES: BlockSpec("leaves", opaque=False, blast_resistance=0.2),
    Block.COBBLESTONE: BlockSpec("cobblestone", blast_resistance=6.0),
    Block.GLASS: BlockSpec(
        "glass", opaque=False, blast_resistance=0.3, drops_item=False
    ),
    Block.OBSIDIAN: BlockSpec("obsidian", blast_resistance=1200.0),
    Block.TNT: BlockSpec("tnt", blast_resistance=0.0),
    Block.KELP: BlockSpec(
        "kelp", solid=False, opaque=False, blast_resistance=0.0
    ),
    Block.CROP: BlockSpec(
        "crop", solid=False, opaque=False, blast_resistance=0.0
    ),
    Block.SAPLING: BlockSpec(
        "sapling", solid=False, opaque=False, blast_resistance=0.0
    ),
    Block.TORCH: BlockSpec(
        "torch", solid=False, opaque=False, light_emission=14,
        blast_resistance=0.0,
    ),
    Block.REDSTONE_WIRE: BlockSpec(
        "redstone_wire",
        solid=False,
        opaque=False,
        redstone_component=True,
        blast_resistance=0.0,
    ),
    Block.REDSTONE_TORCH: BlockSpec(
        "redstone_torch",
        solid=False,
        opaque=False,
        light_emission=7,
        redstone_component=True,
        blast_resistance=0.0,
    ),
    Block.REDSTONE_BLOCK: BlockSpec(
        "redstone_block", redstone_component=True, blast_resistance=6.0
    ),
    Block.REPEATER: BlockSpec(
        "repeater",
        solid=False,
        opaque=False,
        redstone_component=True,
        blast_resistance=0.0,
    ),
    Block.OBSERVER: BlockSpec(
        "observer", redstone_component=True, blast_resistance=3.0
    ),
    Block.PISTON: BlockSpec(
        "piston", redstone_component=True, blast_resistance=1.5
    ),
    Block.PISTON_HEAD: BlockSpec(
        "piston_head",
        redstone_component=True,
        blast_resistance=1.5,
        drops_item=False,
    ),
    Block.LEVER: BlockSpec(
        "lever",
        solid=False,
        opaque=False,
        redstone_component=True,
        blast_resistance=0.5,
    ),
    Block.HOPPER: BlockSpec(
        "hopper", opaque=False, redstone_component=True, blast_resistance=4.8
    ),
    Block.CHEST: BlockSpec("chest", opaque=False, blast_resistance=2.5),
    Block.SLAB: BlockSpec("slab", opaque=False, blast_resistance=6.0),
    Block.ICE: BlockSpec("ice", opaque=False, blast_resistance=0.5),
    Block.MAGMA: BlockSpec("magma", light_emission=3, blast_resistance=0.5),
}


def spec(block_id: int) -> BlockSpec:
    """Look up the :class:`BlockSpec` for ``block_id``."""
    try:
        return BLOCK_SPECS[int(block_id)]
    except KeyError:
        raise ValueError(f"unknown block id {block_id!r}") from None


#: Solidity lookup table indexed by block id — lets bulk world queries
#: (entity ground resolution) test whole id arrays at once.
SOLID_LUT = np.array(
    [BLOCK_SPECS[block_id].solid for block_id in Block.ALL], dtype=np.bool_
)

#: Opacity lookup table indexed by block id — turns the lighting engine's
#: per-id mask loops into a single fancy index over a chunk array.
OPAQUE_LUT = np.array(
    [BLOCK_SPECS[block_id].opaque for block_id in Block.ALL], dtype=np.bool_
)

#: Light emission per block id (0 for non-emitters), for vectorized
#: emitter scans.
LIGHT_EMISSION_LUT = np.array(
    [BLOCK_SPECS[block_id].light_emission for block_id in Block.ALL],
    dtype=np.uint8,
)


def is_solid(block_id: int) -> bool:
    """True if entities collide with this block."""
    return spec(block_id).solid


def is_opaque(block_id: int) -> bool:
    """True if the block stops light."""
    return spec(block_id).opaque
