"""The session/transport boundary between emulated clients and servers.

Bots used to reach straight into server internals (``server.net``,
``server.world``, ``server.telemetry``) — workable in-process, impossible
over a socket.  This module narrows the whole bot↔server surface to a
:class:`ServerSession`: connect/disconnect, action submission, delivery
draining, a ground probe, and clock queries.  ``repro.emulation`` may
import *only* this module and :mod:`repro.mlg.protocol` (lint rule
MSL007 enforces the boundary), so every behaviour that runs in-process
also runs over the TCP transport in :mod:`repro.net`.

:class:`InProcessTransport` is the direct-call implementation.  It is
bit-identical to the historical reach-in path: every method forwards to
the exact same server call the bots used to make, in the same order,
with no added clock reads or RNG draws (``tests/mlg/test_transport.py``
pins the parity against an inline pre-refactor harness).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mlg.netqueue import Delivery
from repro.mlg.protocol import PlayerAction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mlg.server import MLGServer

__all__ = [
    "Delivery",
    "InProcessSession",
    "InProcessTransport",
    "ServerSession",
    "SessionInfo",
    "as_transport",
]


class SessionInfo:
    """The welcome data a transport hands back on connect."""

    __slots__ = ("client_id", "x", "y", "z")

    def __init__(self, client_id: int, x: float, y: float, z: float) -> None:
        self.client_id = client_id
        self.x = x
        self.y = y
        self.z = z


class ServerSession:
    """One client's narrow view of a server, local or remote.

    The contract mirrors what a real protocol client can do: it may send
    actions, drain what the server delivered to *it*, ask the terrain
    height at a column (real clients know it from chunk data), and read
    the server clock (synced via welcome/tick frames on the wire).  It
    can never see other clients, queue internals, or telemetry state.
    """

    def connect(
        self,
        name: str,
        spawn_x: float,
        spawn_z: float,
        latency_up_us: int,
        latency_down_us: int,
        view_distance: int | None = None,
    ) -> SessionInfo:
        """Join the server; returns the spawn placement and client id."""
        raise NotImplementedError

    def disconnect(self, reason: str = "client quit") -> None:
        raise NotImplementedError

    @property
    def connected(self) -> bool:
        raise NotImplementedError

    def submit(self, action: PlayerAction, sent_at_us: int) -> None:
        """Send one action, stamped with the client's send time."""
        raise NotImplementedError

    def poll_deliveries(self) -> list[Delivery]:
        """Drain every delivery addressed to this session since last poll."""
        raise NotImplementedError

    def ground_height(self, x: int, z: int) -> int:
        """Terrain height at a column (the client-side chunk knowledge)."""
        raise NotImplementedError

    def now_us(self) -> int:
        """The session's best estimate of the server clock."""
        raise NotImplementedError

    def record_response_ms(self, response_ms: float) -> None:
        """Report one completed probe round-trip to the measurement plane."""
        raise NotImplementedError

    @property
    def retain_raw(self) -> bool:
        """Whether the measurement plane wants raw per-probe samples kept."""
        raise NotImplementedError


class InProcessTransport:
    """Direct-call transport: sessions talk to an ``MLGServer`` object."""

    def __init__(self, server: "MLGServer") -> None:
        self._server = server

    def session(self) -> "InProcessSession":
        return InProcessSession(self._server)

    def now_us(self) -> int:
        return self._server.clock.now_us


class InProcessSession(ServerSession):
    """A :class:`ServerSession` bound to an in-process server.

    Parity contract: each method is a thin forward to the same server
    call the pre-refactor bots made directly — no extra clock reads, no
    buffering, no reordering — so ``transport=inproc`` runs are
    bit-identical to the historical direct-call path.
    """

    def __init__(self, server: "MLGServer") -> None:
        self._server = server
        self._client_id: int | None = None

    def connect(
        self,
        name: str,
        spawn_x: float,
        spawn_z: float,
        latency_up_us: int,
        latency_down_us: int,
        view_distance: int | None = None,
    ) -> SessionInfo:
        view_kwargs = (
            {} if view_distance is None else {"view_distance": view_distance}
        )
        conn = self._server.connect_client(
            name, spawn_x, spawn_z, latency_up_us, latency_down_us,
            **view_kwargs,
        )
        self._client_id = conn.client_id
        return SessionInfo(conn.client_id, conn.x, conn.y, conn.z)

    def disconnect(self, reason: str = "client quit") -> None:
        if self._client_id is not None:
            self._server.net.disconnect(self._client_id, reason)

    @property
    def connected(self) -> bool:
        if self._client_id is None:
            return False
        endpoint = self._server.net.client(self._client_id)
        return endpoint is not None and not endpoint.disconnected

    def submit(self, action: PlayerAction, sent_at_us: int) -> None:
        self._server.submit_action(action, sent_at_us)

    def poll_deliveries(self) -> list[Delivery]:
        if self._client_id is None:
            return []
        endpoint = self._server.net.client(self._client_id)
        if endpoint is None or endpoint.disconnected:
            return []
        return endpoint.drain_deliveries()

    def ground_height(self, x: int, z: int) -> int:
        return self._server.world.column_height(x, z)

    def now_us(self) -> int:
        return self._server.clock.now_us

    def record_response_ms(self, response_ms: float) -> None:
        self._server.telemetry.observe_response(response_ms)

    @property
    def retain_raw(self) -> bool:
        return self._server.retain_raw


def as_transport(server_or_transport) -> InProcessTransport:
    """Normalize a server object into a transport (duck-typed so callers
    that already hold a transport pass through unchanged)."""
    if hasattr(server_or_transport, "session"):
        return server_or_transport
    return InProcessTransport(server_or_transport)
