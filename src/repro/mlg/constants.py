"""Game-wide constants of the MLG operational model (paper §2)."""

from __future__ import annotations

from repro.simtime import s_to_us

#: Game-loop frequency (ticks per second); §2.1: "typically set to 20 Hz".
TICK_RATE_HZ = 20
#: Tick budget in microseconds (50 ms at 20 Hz).
TICK_BUDGET_US = 50_000
#: Tick budget in milliseconds, the unit used in figures.
TICK_BUDGET_MS = 50.0

#: Horizontal chunk edge length in blocks.
CHUNK_SIZE = 16
#: World height in blocks (simulator uses a reduced-height world).
WORLD_HEIGHT = 128
#: Sea level: water fills terrain below this height.
SEA_LEVEL = 62

#: Default server view distance, in chunks, loaded around each player.
DEFAULT_VIEW_DISTANCE = 8

#: Clients disconnect after this long without receiving a keepalive (§5.3:
#: the Lag workload's tick-duration blowup makes connections time out).
CLIENT_TIMEOUT_US = s_to_us(30.0)
#: Keepalive emission interval.
KEEPALIVE_INTERVAL_US = s_to_us(1.0)

#: Random ticks per loaded chunk per game tick (drives plant growth).
RANDOM_TICK_SPEED = 3

#: Maximum light level.
MAX_LIGHT = 15
#: Mobs spawn only below this light level.
MOB_SPAWN_LIGHT_MAX = 8

#: Natural mob cap per loaded world (scaled by loaded chunks).
MOB_CAP = 70
#: Item entities despawn after this many seconds.
ITEM_DESPAWN_S = 300.0
