"""Dynamic mob spawning (§2.2.3).

MLGs cannot pre-place spawn points: terrain modification may obstruct them,
so spawn positions are computed dynamically every tick — light level, floor
solidity, and body room are checked against the live world.  Farm constructs
register *spawn platforms* (dark rooms engineered for high spawn rates) that
feed mobs toward a funnel goal where they are killed for drops — the
mechanism behind the Farm world's entity farms (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mlg.blocks import Block
from repro.mlg.constants import MOB_CAP, MOB_SPAWN_LIGHT_MAX
from repro.mlg.entity import Entity, EntityKind
from repro.mlg.entity_manager import EntityManager
from repro.mlg.lighting import LightEngine
from repro.mlg.workreport import Op, WorkReport
from repro.mlg.world import World

__all__ = ["SpawnEngine", "SpawnPlatform"]

#: Natural spawn attempts per player per tick.
NATURAL_ATTEMPTS_PER_PLAYER = 3
#: Natural spawn radius around players (min, max), in blocks.
NATURAL_RADIUS = (12, 48)
#: Fraction of natural attempts that try passive (daylight) mobs.
PASSIVE_ATTEMPT_FRACTION = 0.3


@dataclass
class SpawnPlatform:
    """A farm spawning room: bounded area with boosted spawn attempts.

    ``goal`` is where spawned mobs navigate to (the farm's kill chamber);
    mobs reaching it are killed and drop ``drops_per_kill`` item entities.
    """

    x0: int
    z0: int
    x1: int
    z1: int
    y: int
    attempts_per_tick: float = 0.5
    local_cap: int = 12
    goal: tuple[int, int, int] | None = None
    drops_per_kill: int = 2
    #: Hoppers under the kill chamber collect drops after this many ticks.
    collect_after_ticks: int = 120
    #: Fractional-attempt accumulator.
    _accumulator: float = field(default=0.0, repr=False)
    #: Live mobs owned by this platform.
    _mobs: list[Entity] = field(default_factory=list, repr=False)

    def contains(self, x: float, z: float) -> bool:
        return self.x0 <= x <= self.x1 and self.z0 <= z <= self.z1


class SpawnEngine:
    """Executes natural and platform spawning each tick."""

    def __init__(
        self,
        world: World,
        lights: LightEngine,
        entities: EntityManager,
        rng: np.random.Generator,
    ) -> None:
        self.world = world
        self.lights = lights
        self.entities = entities
        self.rng = rng
        self.platforms: list[SpawnPlatform] = []
        #: Kills performed at platform goals (exposed to collectors).
        self.kills_total = 0

    def add_platform(self, platform: SpawnPlatform) -> SpawnPlatform:
        self.platforms.append(platform)
        return platform

    # -- spawn-point validity ----------------------------------------------------

    def can_spawn_at(
        self, x: int, y: int, z: int, passive: bool = False
    ) -> bool:
        """Dynamic spawn-point check: floor, room, and light.

        Hostile mobs need darkness; passive (animal) mobs need daylight —
        both checks read the live lighting state because terrain changes
        move shadows.
        """
        world = self.world
        if not world.is_solid_at(x, y - 1, z):
            return False
        if world.is_solid_at(x, y, z) or world.is_solid_at(x, y + 1, z):
            return False
        if world.get_block(x, y, z) != Block.AIR:
            return False
        light = self.lights.light_at(x, y, z)
        if passive:
            return light >= MOB_SPAWN_LIGHT_MAX
        return light < MOB_SPAWN_LIGHT_MAX

    # -- per-tick ------------------------------------------------------------------

    def tick(
        self,
        player_positions: list[tuple[float, float, float]],
        report: WorkReport,
    ) -> int:
        """Run all spawn attempts for this tick; returns mobs spawned."""
        spawned = self._natural_spawning(player_positions, report)
        spawned += self._platform_spawning(report)
        self._platform_kills(report)
        return spawned

    def _natural_spawning(
        self,
        player_positions: list[tuple[float, float, float]],
        report: WorkReport,
    ) -> int:
        if not player_positions:
            return 0
        mob_count = self.entities.count(EntityKind.MOB)
        spawned = 0
        r_lo, r_hi = NATURAL_RADIUS
        for px, py, pz in player_positions:
            for _ in range(NATURAL_ATTEMPTS_PER_PLAYER):
                report.add(Op.SPAWN_ATTEMPT)
                if mob_count + spawned >= MOB_CAP:
                    continue
                angle = self.rng.random() * 2 * np.pi
                radius = self.rng.uniform(r_lo, r_hi)
                x = int(px + np.cos(angle) * radius)
                z = int(pz + np.sin(angle) * radius)
                ground = self.world.column_height(x, z)
                if ground <= 0:
                    continue
                passive = self.rng.random() < PASSIVE_ATTEMPT_FRACTION
                if self.can_spawn_at(x, ground, z, passive=passive):
                    self.entities.spawn(
                        EntityKind.MOB, x + 0.5, float(ground), z + 0.5
                    )
                    spawned += 1
        return spawned

    def _platform_spawning(self, report: WorkReport) -> int:
        spawned = 0
        for platform in self.platforms:
            platform._mobs = [m for m in platform._mobs if m.alive]
            platform._accumulator += platform.attempts_per_tick
            attempts = int(platform._accumulator)
            platform._accumulator -= attempts
            for _ in range(attempts):
                report.add(Op.SPAWN_ATTEMPT)
                if len(platform._mobs) >= platform.local_cap:
                    continue
                x = int(self.rng.integers(platform.x0, platform.x1 + 1))
                z = int(self.rng.integers(platform.z0, platform.z1 + 1))
                if not self.can_spawn_at(x, platform.y, z):
                    continue
                mob = self.entities.spawn(
                    EntityKind.MOB, x + 0.5, float(platform.y), z + 0.5
                )
                mob.goal = platform.goal
                platform._mobs.append(mob)
                spawned += 1
        return spawned

    def _platform_kills(self, report: WorkReport) -> None:
        """Kill mobs at their platform's goal; drop and later collect items."""
        for platform in self.platforms:
            if platform.goal is None:
                continue
            gx, gy, gz = platform.goal
            for mob in platform._mobs:
                if not mob.alive:
                    continue
                if mob.distance_sq_to(gx + 0.5, gy, gz + 0.5) < 2.5:
                    self.entities.remove(mob)
                    self.kills_total += 1
                    for _ in range(platform.drops_per_kill):
                        self.entities.spawn(
                            EntityKind.ITEM,
                            gx + 0.5 + float(self.rng.uniform(-0.3, 0.3)),
                            float(gy),
                            gz + 0.5 + float(self.rng.uniform(-0.3, 0.3)),
                            vy=0.1,
                        )
            # The farm's hopper line absorbs settled drops (keeps the item
            # population bounded, as a real farm's collection system does).
            absorbed = self.entities.absorb_items(
                gx + 0.5,
                gz + 0.5,
                radius=6.0,
                min_age_ticks=platform.collect_after_ticks,
            )
            if absorbed:
                report.add(Op.BLOCK_UPDATE, 8 * absorbed)
