"""Chunked voxel world — the terrain state of the operational model (§2.3).

The world is an endless horizontal grid of 16×16×``WORLD_HEIGHT`` chunks,
lazily created (and optionally generated) when first touched.  Every block
mutation is appended to a per-tick change log which the game loop drains to
drive terrain simulation triggers and client state-update packets.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.mlg.blocks import SOLID_LUT, Block, is_opaque, is_solid
from repro.mlg.constants import CHUNK_SIZE, WORLD_HEIGHT

__all__ = ["BlockChange", "Chunk", "World"]


@dataclass(frozen=True)
class BlockChange:
    """One block mutation, as recorded in the world's change log."""

    x: int
    y: int
    z: int
    old: int
    new: int


class Chunk:
    """A 16×16 column of blocks with light and auxiliary state.

    Arrays are indexed ``[local_x, local_z, y]``.  ``aux`` stores per-block
    metadata (crop growth stage, repeater delay, redstone power, fluid
    level).  ``heightmap[x, z]`` is the y of the highest non-air block plus
    one (0 for an empty column).
    """

    __slots__ = (
        "cx",
        "cz",
        "blocks",
        "aux",
        "skylight",
        "blocklight",
        "heightmap",
        "dirty",
    )

    def __init__(self, cx: int, cz: int) -> None:
        self.cx = cx
        self.cz = cz
        shape = (CHUNK_SIZE, CHUNK_SIZE, WORLD_HEIGHT)
        self.blocks = np.zeros(shape, dtype=np.uint8)
        self.aux = np.zeros(shape, dtype=np.uint8)
        self.skylight = np.zeros(shape, dtype=np.uint8)
        self.blocklight = np.zeros(shape, dtype=np.uint8)
        self.heightmap = np.zeros((CHUNK_SIZE, CHUNK_SIZE), dtype=np.int16)
        self.dirty = False

    def recompute_heightmap(self) -> None:
        """Rebuild the heightmap from the block array (vectorized)."""
        nonair = self.blocks != Block.AIR
        # Highest non-air index + 1 per column; 0 when the column is empty.
        reversed_cols = nonair[:, :, ::-1]
        first_from_top = reversed_cols.argmax(axis=2)
        any_block = nonair.any(axis=2)
        self.heightmap[:, :] = np.where(
            any_block, WORLD_HEIGHT - first_from_top, 0
        ).astype(np.int16)

    def update_height_at(self, lx: int, lz: int) -> None:
        """Recompute the heightmap for a single column."""
        column = self.blocks[lx, lz]
        nz = np.flatnonzero(column)
        self.heightmap[lx, lz] = int(nz[-1]) + 1 if nz.size else 0

    @property
    def nbytes(self) -> int:
        """Approximate in-memory size of the chunk's state arrays."""
        return (
            self.blocks.nbytes
            + self.aux.nbytes
            + self.skylight.nbytes
            + self.blocklight.nbytes
            + self.heightmap.nbytes
        )


class World:
    """The global terrain state: a dictionary of loaded chunks.

    ``generator`` — when provided — is invoked to populate newly created
    chunks (signature ``generator(chunk) -> None``), which models the lazy
    terrain generation of §2.2.2.

    ``loader`` — when provided — is consulted *before* the generator when
    a missing chunk is touched (signature ``loader(cx, cz) -> Chunk |
    None``): the hook through which the persistence layer streams chunks
    back in from region files.  A ``None`` return falls through to
    generation.
    """

    def __init__(
        self,
        generator: Callable[[Chunk], None] | None = None,
        loader: Callable[[int, int], Chunk | None] | None = None,
    ) -> None:
        self._chunks: dict[tuple[int, int], Chunk] = {}
        self._generator = generator
        self._loader = loader
        self._change_log: list[BlockChange] = []
        #: Chunks generated since the last drain (for work accounting).
        self.chunks_generated_this_tick = 0

    # -- chunk management ---------------------------------------------------

    @staticmethod
    def chunk_coords(x: int, z: int) -> tuple[int, int]:
        """Chunk coordinates containing world ``(x, z)``."""
        return x >> 4, z >> 4

    def has_chunk(self, cx: int, cz: int) -> bool:
        return (cx, cz) in self._chunks

    def get_chunk(self, cx: int, cz: int) -> Chunk | None:
        return self._chunks.get((cx, cz))

    def ensure_chunk(self, cx: int, cz: int) -> Chunk:
        """Return the chunk, creating (and generating) it if needed."""
        return self.ensure_chunk_tracked(cx, cz)[0]

    def ensure_chunk_tracked(self, cx: int, cz: int) -> tuple[Chunk, str]:
        """Like :meth:`ensure_chunk`, also reporting where the chunk came
        from: ``"resident"`` (already in memory), ``"loaded"`` (read back
        through the loader hook), or ``"generated"`` — the distinction the
        cost model charges differently (§ satellite: generation vs disk
        load must be attributable)."""
        chunk = self._chunks.get((cx, cz))
        if chunk is not None:
            return chunk, "resident"
        if self._loader is not None:
            chunk = self._loader(cx, cz)
            if chunk is not None:
                self._chunks[(cx, cz)] = chunk
                return chunk, "loaded"
        chunk = Chunk(cx, cz)
        self._chunks[(cx, cz)] = chunk
        if self._generator is not None:
            self._generator(chunk)
            chunk.recompute_heightmap()
            self.chunks_generated_this_tick += 1
        return chunk, "generated"

    def set_loader(
        self, loader: Callable[[int, int], Chunk | None] | None
    ) -> None:
        """Install the disk-load hook (wired by the chunk lifecycle)."""
        self._loader = loader

    def adopt_chunk(self, chunk: Chunk) -> None:
        """Install an externally constructed chunk (deserialization),
        replacing any resident chunk at its coordinates."""
        self._chunks[(chunk.cx, chunk.cz)] = chunk

    @property
    def has_generator(self) -> bool:
        """Whether missing chunks can be (re)generated deterministically."""
        return self._generator is not None

    def unload_chunk(self, cx: int, cz: int) -> Chunk | None:
        """Drop a chunk from memory (the eviction half of streaming).

        Returns the evicted chunk, or ``None`` when it was not loaded.
        The caller (the lifecycle manager) is responsible for never
        evicting unsaved dirty state.
        """
        return self._chunks.pop((cx, cz), None)

    def loaded_chunks(self) -> Iterator[Chunk]:
        return iter(self._chunks.values())

    @property
    def loaded_chunk_count(self) -> int:
        return len(self._chunks)

    @property
    def nbytes(self) -> int:
        """Total chunk memory, the world's contribution to heap usage."""
        return sum(chunk.nbytes for chunk in self._chunks.values())

    # -- block access -------------------------------------------------------

    def in_bounds_y(self, y: int) -> bool:
        return 0 <= y < WORLD_HEIGHT

    def get_block(self, x: int, y: int, z: int) -> int:
        """Block id at world coordinates; AIR outside vertical bounds or in
        unloaded chunks (reads never force generation)."""
        if not self.in_bounds_y(y):
            return Block.AIR
        chunk = self._chunks.get((x >> 4, z >> 4))
        if chunk is None:
            return Block.AIR
        return int(chunk.blocks[x & 15, z & 15, y])

    def get_aux(self, x: int, y: int, z: int) -> int:
        if not self.in_bounds_y(y):
            return 0
        chunk = self._chunks.get((x >> 4, z >> 4))
        if chunk is None:
            return 0
        return int(chunk.aux[x & 15, z & 15, y])

    def set_aux(self, x: int, y: int, z: int, value: int) -> None:
        if not self.in_bounds_y(y):
            return
        chunk = self.ensure_chunk(x >> 4, z >> 4)
        chunk.aux[x & 15, z & 15, y] = value & 0xFF
        chunk.dirty = True

    def set_block(
        self, x: int, y: int, z: int, block_id: int, aux: int = 0,
        log: bool = True,
    ) -> BlockChange | None:
        """Write a block; returns the change (or None when it is a no-op).

        ``log=False`` suppresses the change log — used by bulk world
        construction before an experiment starts, so that building a workload
        world does not masquerade as runtime terrain work.
        """
        if not self.in_bounds_y(y):
            return None
        chunk = self.ensure_chunk(x >> 4, z >> 4)
        lx, lz = x & 15, z & 15
        old = int(chunk.blocks[lx, lz, y])
        if old == block_id and int(chunk.aux[lx, lz, y]) == aux:
            return None
        chunk.blocks[lx, lz, y] = block_id
        chunk.aux[lx, lz, y] = aux & 0xFF
        chunk.dirty = True
        height = int(chunk.heightmap[lx, lz])
        if block_id != Block.AIR and y >= height:
            chunk.heightmap[lx, lz] = y + 1
        elif block_id == Block.AIR and y == height - 1:
            chunk.update_height_at(lx, lz)
        change = BlockChange(x, y, z, old, block_id)
        if log:
            self._change_log.append(change)
        return change

    # -- change log ---------------------------------------------------------

    def drain_changes(self) -> list[BlockChange]:
        """Return and clear this tick's block changes."""
        changes = self._change_log
        self._change_log = []
        self.chunks_generated_this_tick = 0
        return changes

    def pending_change_count(self) -> int:
        return len(self._change_log)

    # -- queries used by the engines ----------------------------------------

    def column_height(self, x: int, z: int) -> int:
        """Top of the highest block in the column (0 if empty/unloaded)."""
        chunk = self._chunks.get((x >> 4, z >> 4))
        if chunk is None:
            return 0
        return int(chunk.heightmap[x & 15, z & 15])

    def column_heights_bulk(
        self, xs: "np.ndarray", zs: "np.ndarray"
    ) -> "np.ndarray":
        """Vectorized :meth:`column_height` for integer coordinate arrays.

        Unloaded chunks report height 0.  Used by the entity manager's bulk
        physics path (TNT swarms, item floods).
        """
        xs = np.asarray(xs, dtype=np.int64)
        zs = np.asarray(zs, dtype=np.int64)
        out = np.zeros(xs.shape, dtype=np.int64)
        for key, idx in self._chunk_groups(xs, zs):
            chunk = self._chunks.get(key)
            if chunk is None:
                continue
            out[idx] = chunk.heightmap[xs[idx] & 15, zs[idx] & 15]
        return out

    def blocks_bulk(
        self, xs: "np.ndarray", ys: "np.ndarray", zs: "np.ndarray"
    ) -> "np.ndarray":
        """Vectorized :meth:`get_block` for integer coordinate arrays.

        AIR outside vertical bounds and in unloaded chunks, matching the
        scalar read semantics (reads never force generation).
        """
        xs = np.asarray(xs, dtype=np.int64)
        ys = np.asarray(ys, dtype=np.int64)
        zs = np.asarray(zs, dtype=np.int64)
        out = np.zeros(xs.shape, dtype=np.uint8)
        in_bounds = (ys >= 0) & (ys < WORLD_HEIGHT)
        for key, idx in self._chunk_groups(xs, zs):
            chunk = self._chunks.get(key)
            if chunk is None:
                continue
            idx = idx[in_bounds[idx]]
            if idx.size == 0:
                continue
            out[idx] = chunk.blocks[xs[idx] & 15, zs[idx] & 15, ys[idx]]
        return out

    def aux_bulk(
        self, xs: "np.ndarray", ys: "np.ndarray", zs: "np.ndarray"
    ) -> "np.ndarray":
        """Vectorized :meth:`get_aux` for integer coordinate arrays.

        0 outside vertical bounds and in unloaded chunks, matching the
        scalar read semantics.
        """
        xs = np.asarray(xs, dtype=np.int64)
        ys = np.asarray(ys, dtype=np.int64)
        zs = np.asarray(zs, dtype=np.int64)
        out = np.zeros(xs.shape, dtype=np.uint8)
        in_bounds = (ys >= 0) & (ys < WORLD_HEIGHT)
        for key, idx in self._chunk_groups(xs, zs):
            chunk = self._chunks.get(key)
            if chunk is None:
                continue
            idx = idx[in_bounds[idx]]
            if idx.size == 0:
                continue
            out[idx] = chunk.aux[xs[idx] & 15, zs[idx] & 15, ys[idx]]
        return out

    def set_aux_bulk(
        self,
        xs: "np.ndarray",
        ys: "np.ndarray",
        zs: "np.ndarray",
        values: "np.ndarray",
    ) -> None:
        """Vectorized :meth:`set_aux`: no change log, marks chunks dirty.

        Positions must be unique (duplicate targets would make the write
        order unspecified, unlike the scalar last-write-wins loop).
        """
        xs = np.asarray(xs, dtype=np.int64)
        ys = np.asarray(ys, dtype=np.int64)
        zs = np.asarray(zs, dtype=np.int64)
        values = np.asarray(values).astype(np.uint8)
        in_bounds = (ys >= 0) & (ys < WORLD_HEIGHT)
        for key, idx in self._chunk_groups(xs, zs):
            idx = idx[in_bounds[idx]]
            if idx.size == 0:
                continue
            chunk = self.ensure_chunk(*key)
            chunk.aux[xs[idx] & 15, zs[idx] & 15, ys[idx]] = values[idx]
            chunk.dirty = True

    def set_blocks_bulk(
        self,
        xs: "np.ndarray",
        ys: "np.ndarray",
        zs: "np.ndarray",
        block_ids: "np.ndarray",
        auxs: "np.ndarray | None" = None,
        log: bool = True,
    ) -> int:
        """Vectorized :meth:`set_block`; returns the number of real changes.

        Applies per-chunk array writes, updates heightmaps, and appends
        change-log entries (in input order) in one pass — the write half
        of the batched terrain engines.  No-op writes (same block and aux)
        are skipped exactly like the scalar path.  Positions must be
        unique; out-of-bounds y positions are ignored.
        """
        xs = np.asarray(xs, dtype=np.int64)
        ys = np.asarray(ys, dtype=np.int64)
        zs = np.asarray(zs, dtype=np.int64)
        block_ids = np.asarray(block_ids).astype(np.uint8)
        if auxs is None:
            auxs = np.zeros(xs.shape, dtype=np.uint8)
        else:
            auxs = np.asarray(auxs).astype(np.uint8)
        in_bounds = (ys >= 0) & (ys < WORLD_HEIGHT)
        changed = np.zeros(xs.shape, dtype=np.bool_)
        old_blocks = np.zeros(xs.shape, dtype=np.uint8)
        for key, idx in self._chunk_groups(xs, zs):
            idx = idx[in_bounds[idx]]
            if idx.size == 0:
                continue
            chunk = self.ensure_chunk(*key)
            lx, lz, yy = xs[idx] & 15, zs[idx] & 15, ys[idx]
            ob = chunk.blocks[lx, lz, yy]
            oa = chunk.aux[lx, lz, yy]
            mask = (ob != block_ids[idx]) | (oa != auxs[idx])
            if not mask.any():
                continue
            widx = idx[mask]
            changed[widx] = True
            old_blocks[widx] = ob[mask]
            wlx, wlz, wy = lx[mask], lz[mask], yy[mask]
            chunk.blocks[wlx, wlz, wy] = block_ids[widx]
            chunk.aux[wlx, wlz, wy] = auxs[widx]
            chunk.dirty = True
            nonair = block_ids[widx] != Block.AIR
            if nonair.any():
                np.maximum.at(
                    chunk.heightmap,
                    (wlx[nonair], wlz[nonair]),
                    (wy[nonair] + 1).astype(np.int16),
                )
            if (~nonair).any():
                # Carving air can lower a column top; rescan only columns
                # whose recorded top was the carved cell.
                alx, alz, ay = wlx[~nonair], wlz[~nonair], wy[~nonair]
                tops = chunk.heightmap[alx, alz]
                for k in np.flatnonzero(ay == tops - 1):
                    chunk.update_height_at(int(alx[k]), int(alz[k]))
        if log and changed.any():
            for i in np.flatnonzero(changed):
                self._change_log.append(
                    BlockChange(
                        int(xs[i]),
                        int(ys[i]),
                        int(zs[i]),
                        int(old_blocks[i]),
                        int(block_ids[i]),
                    )
                )
        return int(changed.sum())

    def chunks_loaded_bulk(
        self, xs: "np.ndarray", zs: "np.ndarray"
    ) -> "np.ndarray":
        """Boolean mask: is the chunk containing each ``(x, z)`` loaded?"""
        xs = np.asarray(xs, dtype=np.int64)
        zs = np.asarray(zs, dtype=np.int64)
        out = np.zeros(xs.shape, dtype=np.bool_)
        for key, idx in self._chunk_groups(xs, zs):
            if key in self._chunks:
                out[idx] = True
        return out

    def ground_below_bulk(
        self,
        xs: "np.ndarray",
        ys: "np.ndarray",
        zs: "np.ndarray",
        max_scan: int = 12,
    ) -> "np.ndarray":
        """Vectorized downward ground scan for entity physics.

        For each position: the top surface (``y + 1``) of the first solid
        block at or below the entity, scanning up to ``max_scan`` blocks
        down — the bulk equivalent of the scalar ``_ground_below``, NOT a
        heightmap-top query: entities under a roof must ground against the
        floor beneath them, not the structure above.  Positions with no
        solid block in range fall back to ``max(0, start - max_scan)``.
        """
        xs = np.floor(np.asarray(xs, dtype=np.float64)).astype(np.int64)
        zs = np.floor(np.asarray(zs, dtype=np.float64)).astype(np.int64)
        start = np.minimum(
            np.floor(np.asarray(ys, dtype=np.float64)).astype(np.int64),
            WORLD_HEIGHT - 1,
        )
        # Clustered populations (farm mobs on a platform, items in a kill
        # chamber) repeat the same column query; scan each distinct
        # (x, z, start) once and broadcast the result back.
        keys = (
            ((xs & 0xFFFFFF) << 40)
            | ((zs & 0xFFFFFF) << 16)
            | (start & 0xFFFF)
        )
        uniq, first_idx, inverse = np.unique(
            keys, return_index=True, return_inverse=True
        )
        if uniq.size < keys.size:
            unique_result = self._ground_below_distinct(
                xs[first_idx], start[first_idx], zs[first_idx], max_scan
            )
            return unique_result[inverse]
        return self._ground_below_distinct(xs, start, zs, max_scan)

    def _ground_below_distinct(
        self,
        xs: "np.ndarray",
        start: "np.ndarray",
        zs: "np.ndarray",
        max_scan: int,
    ) -> "np.ndarray":
        """Downward scan for already-deduplicated column queries."""
        out = np.maximum(0, start - max_scan).astype(np.float64)
        scan_y = start[:, None] - np.arange(max_scan)[None, :]
        valid = scan_y >= 0
        clipped_y = np.clip(scan_y, 0, WORLD_HEIGHT - 1)
        for key, idx in self._chunk_groups(xs, zs):
            chunk = self._chunks.get(key)
            if chunk is None:
                continue
            columns = chunk.blocks[
                xs[idx][:, None] & 15, zs[idx][:, None] & 15, clipped_y[idx]
            ]
            solid = SOLID_LUT[columns] & valid[idx]
            hit = solid.any(axis=1)
            if not hit.any():
                continue
            first = solid.argmax(axis=1)
            tops = scan_y[idx, first] + 1
            out[idx[hit]] = tops[hit].astype(np.float64)
        return out

    def _chunk_groups(
        self, xs: "np.ndarray", zs: "np.ndarray"
    ) -> Iterator[tuple[tuple[int, int], "np.ndarray"]]:
        """Group positions by containing chunk: ``((cx, cz), indices)``.

        Sort-based grouping: one O(n log n) argsort instead of an O(n)
        boolean mask per chunk, which matters when a TNT swarm spreads
        across dozens of chunks.
        """
        cxs = xs >> 4
        czs = zs >> 4
        keys = cxs * (1 << 32) + (czs & 0xFFFFFFFF)
        if keys.size == 0:
            return
        order = np.argsort(keys, kind="stable")
        boundaries = np.flatnonzero(np.diff(keys[order])) + 1
        starts = (0, *boundaries.tolist())
        ends = (*boundaries.tolist(), keys.size)
        for group_start, group_end in zip(starts, ends):
            idx = order[group_start:group_end]
            first = int(idx[0])
            yield (int(cxs[first]), int(czs[first])), idx

    def is_solid_at(self, x: int, y: int, z: int) -> bool:
        return is_solid(self.get_block(x, y, z))

    def is_opaque_at(self, x: int, y: int, z: int) -> bool:
        return is_opaque(self.get_block(x, y, z))

    def neighbors6(
        self, x: int, y: int, z: int
    ) -> Iterable[tuple[int, int, int]]:
        """The six face-adjacent positions (unfiltered)."""
        return (
            (x + 1, y, z),
            (x - 1, y, z),
            (x, y + 1, z),
            (x, y - 1, z),
            (x, y, z + 1),
            (x, y, z - 1),
        )

    def count_blocks(self, block_id: int) -> int:
        """Total count of ``block_id`` across loaded chunks (vectorized)."""
        return int(
            sum(
                int((chunk.blocks == block_id).sum())
                for chunk in self._chunks.values()
            )
        )

    def fill(
        self,
        x0: int,
        y0: int,
        z0: int,
        x1: int,
        y1: int,
        z1: int,
        block_id: int,
        log: bool = False,
    ) -> int:
        """Fill an inclusive cuboid; returns the number of blocks written.

        Bulk construction helper used by the workload world builders.
        """
        if x1 < x0 or y1 < y0 or z1 < z0:
            raise ValueError("fill cuboid corners must be ordered")
        ylo, yhi = max(y0, 0), min(y1, WORLD_HEIGHT - 1)
        if ylo > yhi:
            return 0
        count = 0
        logged: list[tuple[int, int, int, int]] = []
        for cx in range(x0 >> 4, (x1 >> 4) + 1):
            for cz in range(z0 >> 4, (z1 >> 4) + 1):
                chunk = self.ensure_chunk(cx, cz)
                gx0, gx1 = max(x0, cx << 4), min(x1, (cx << 4) + 15)
                gz0, gz1 = max(z0, cz << 4), min(z1, (cz << 4) + 15)
                sx = slice(gx0 & 15, (gx1 & 15) + 1)
                sz = slice(gz0 & 15, (gz1 & 15) + 1)
                sy = slice(ylo, yhi + 1)
                sub_b = chunk.blocks[sx, sz, sy]
                sub_a = chunk.aux[sx, sz, sy]
                mask = (sub_b != block_id) | (sub_a != 0)
                n_changed = int(mask.sum())
                if n_changed == 0:
                    continue
                if log:
                    mlx, mlz, my = np.nonzero(mask)
                    old = sub_b[mlx, mlz, my]
                    for lx, lz, y, ob in zip(
                        mlx.tolist(), mlz.tolist(), my.tolist(), old.tolist()
                    ):
                        logged.append((gx0 + lx, gz0 + lz, ylo + y, ob))
                chunk.blocks[sx, sz, sy] = block_id
                chunk.aux[sx, sz, sy] = 0
                chunk.dirty = True
                if block_id != Block.AIR:
                    chunk.heightmap[sx, sz] = np.maximum(
                        chunk.heightmap[sx, sz], np.int16(yhi + 1)
                    )
                else:
                    # Carving air: rebuild the covered columns exactly.
                    cols = chunk.blocks[sx, sz, :] != Block.AIR
                    first_from_top = cols[:, :, ::-1].argmax(axis=2)
                    chunk.heightmap[sx, sz] = np.where(
                        cols.any(axis=2), WORLD_HEIGHT - first_from_top, 0
                    ).astype(np.int16)
                count += n_changed
        if logged:
            # Match the scalar loop's change-log order (x, then z, then y).
            logged.sort()
            self._change_log.extend(
                BlockChange(x, y, z, old, block_id)
                for x, z, y, old in logged
            )
        return count
