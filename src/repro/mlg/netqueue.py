"""Networking queues — component 1 of the operational model (Fig. 4).

Inbound: client actions are buffered with their arrival time and drained at
the start of the tick that follows them.  Outbound: per-client packet
buffers flushed at tick end; only packets a client-side consumer cares
about (chat echoes, keepalives) are materialized as deliveries with a
timestamp — bulk state updates are counted into :class:`PacketStats`.

Keepalive bookkeeping lives here too: clients that go without a keepalive
longer than ``CLIENT_TIMEOUT_US`` disconnect, which is how the Lag workload
kills servers on AWS (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mlg.constants import CLIENT_TIMEOUT_US, KEEPALIVE_INTERVAL_US
from repro.mlg.protocol import PacketCategory, PacketStats, PlayerAction
from repro.mlg.workreport import Op, WorkReport

__all__ = ["Delivery", "NetworkQueues", "ClientEndpoint"]


@dataclass(frozen=True)
class Delivery:
    """A materialized server→client message with its delivery time."""

    client_id: int
    category: str
    payload: tuple
    delivered_at_us: int


@dataclass
class ClientEndpoint:
    """Per-client networking state held by the server.

    The delivery buffer is private: consumers (the in-process session and
    the TCP writer alike) take ownership of buffered deliveries through
    :meth:`drain_deliveries` instead of indexing into server state.
    """

    client_id: int
    latency_up_us: int
    latency_down_us: int
    connected_at_us: int
    last_keepalive_flush_us: int
    next_keepalive_due_us: int
    disconnected: bool = False
    disconnect_reason: str | None = None
    _deliveries: list[Delivery] = field(default_factory=list)

    def push_delivery(self, delivery: Delivery) -> None:
        self._deliveries.append(delivery)

    def drain_deliveries(self) -> list[Delivery]:
        """Hand over (and clear) every delivery buffered since last drain."""
        drained = self._deliveries
        self._deliveries = []
        return drained

    @property
    def pending_deliveries(self) -> int:
        return len(self._deliveries)


class NetworkQueues:
    """In/out buffering between clients and the game loop."""

    def __init__(self) -> None:
        self._inbound: list[tuple[int, PlayerAction]] = []
        self._clients: dict[int, ClientEndpoint] = {}
        self.stats = PacketStats()
        self.bytes_in_total = 0

    # -- clients -------------------------------------------------------------------

    def register_client(
        self,
        client_id: int,
        now_us: int,
        latency_up_us: int,
        latency_down_us: int,
    ) -> ClientEndpoint:
        endpoint = ClientEndpoint(
            client_id=client_id,
            latency_up_us=latency_up_us,
            latency_down_us=latency_down_us,
            connected_at_us=now_us,
            last_keepalive_flush_us=now_us,
            next_keepalive_due_us=now_us + KEEPALIVE_INTERVAL_US,
        )
        self._clients[client_id] = endpoint
        return endpoint

    def client(self, client_id: int) -> ClientEndpoint | None:
        return self._clients.get(client_id)

    def connected_clients(self) -> list[ClientEndpoint]:
        return [c for c in self._clients.values() if not c.disconnected]

    @property
    def connected_count(self) -> int:
        return sum(1 for c in self._clients.values() if not c.disconnected)

    def disconnect(self, client_id: int, reason: str) -> None:
        endpoint = self._clients.get(client_id)
        if endpoint is not None and not endpoint.disconnected:
            endpoint.disconnected = True
            endpoint.disconnect_reason = reason

    # -- inbound -------------------------------------------------------------------

    def submit_action(
        self, action: PlayerAction, sent_at_us: int
    ) -> int:
        """Client sends an action; returns its server arrival time."""
        endpoint = self._clients.get(action.client_id)
        if endpoint is None or endpoint.disconnected:
            return -1
        arrival = sent_at_us + endpoint.latency_up_us
        self._inbound.append((arrival, action))
        self.bytes_in_total += action.size_bytes
        return arrival

    def drain_inbound(self, tick_start_us: int) -> list[PlayerAction]:
        """Actions that arrived before this tick started, in arrival order."""
        due = [
            (arrival, action)
            for arrival, action in self._inbound
            if arrival <= tick_start_us
        ]
        self._inbound = [
            entry for entry in self._inbound if entry[0] > tick_start_us
        ]
        due.sort(key=lambda entry: entry[0])
        return [action for _, action in due]

    @property
    def inbound_pending(self) -> int:
        return len(self._inbound)

    # -- outbound -------------------------------------------------------------------

    def broadcast_counted(
        self, category: str, n_per_client: int, report: WorkReport
    ) -> None:
        """Count ``n_per_client`` packets of a category to every client."""
        if n_per_client <= 0:
            return
        for endpoint in self._clients.values():
            if endpoint.disconnected:
                continue
            added = self.stats.record(category, n_per_client)
            report.add(Op.PACKET, n_per_client)
            report.add(Op.BYTES_OUT, added)

    def send_counted(
        self, client_id: int, category: str, n: int, report: WorkReport
    ) -> None:
        """Count ``n`` packets of a category to a single client."""
        endpoint = self._clients.get(client_id)
        if endpoint is None or endpoint.disconnected or n <= 0:
            return
        added = self.stats.record(category, n)
        report.add(Op.PACKET, n)
        report.add(Op.BYTES_OUT, added)

    def deliver(
        self,
        client_id: int,
        category: str,
        payload: tuple,
        flush_us: int,
        report: WorkReport,
    ) -> Delivery | None:
        """Materialize a delivery (chat echo etc.) to one client."""
        endpoint = self._clients.get(client_id)
        if endpoint is None or endpoint.disconnected:
            return None
        added = self.stats.record(category, 1)
        report.add(Op.PACKET, 1)
        report.add(Op.BYTES_OUT, added)
        delivery = Delivery(
            client_id, category, payload, flush_us + endpoint.latency_down_us
        )
        endpoint.push_delivery(delivery)
        return delivery

    # -- keepalives and timeouts ------------------------------------------------------

    def check_timeouts(self, now_us: int) -> list[int]:
        """Age out clients without sending anything (tick-start check).

        Clients decide to disconnect on their own wall clock; a server
        stuck in a monster tick discovers the departures when it next
        looks — here, at the start of the following tick.
        """
        timed_out: list[int] = []
        for endpoint in self._clients.values():
            if endpoint.disconnected:
                continue
            if now_us - endpoint.last_keepalive_flush_us >= CLIENT_TIMEOUT_US:
                endpoint.disconnected = True
                endpoint.disconnect_reason = "keepalive timeout"
                timed_out.append(endpoint.client_id)
        return timed_out

    def flush_keepalives(self, flush_us: int, report: WorkReport) -> list[int]:
        """Send due keepalives and detect timeouts; returns timed-out ids.

        Keepalives are flushed at tick boundaries (the networking thread
        writes, but the tick loop produces).  A client whose last keepalive
        flush is older than the timeout disconnects — during a very long
        tick nothing flushes, so all clients age out together.
        """
        timed_out: list[int] = []
        for endpoint in self._clients.values():
            if endpoint.disconnected:
                continue
            if flush_us - endpoint.last_keepalive_flush_us >= CLIENT_TIMEOUT_US:
                endpoint.disconnected = True
                endpoint.disconnect_reason = "keepalive timeout"
                timed_out.append(endpoint.client_id)
                continue
            if flush_us >= endpoint.next_keepalive_due_us:
                added = self.stats.record(PacketCategory.KEEPALIVE, 1)
                report.add(Op.PACKET, 1)
                report.add(Op.BYTES_OUT, added)
                endpoint.last_keepalive_flush_us = flush_us
                while endpoint.next_keepalive_due_us <= flush_us:
                    endpoint.next_keepalive_due_us += KEEPALIVE_INTERVAL_US
        return timed_out
