"""Lighting engine — dynamic light recomputation on terrain change (§2.2.2).

Static games bake lighting; MLGs must recompute it at runtime because the
terrain is modifiable ("once the bridge has collapsed, the bridge no longer
casts shadow").  We implement column skylight (top-down occlusion) and BFS
block-light propagation from emitters, and count every relit node so the
cost model can charge for it.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.mlg.blocks import LIGHT_EMISSION_LUT, OPAQUE_LUT
from repro.mlg.constants import CHUNK_SIZE, MAX_LIGHT, WORLD_HEIGHT
from repro.mlg.workreport import Op, WorkReport
from repro.mlg.world import Chunk, World

__all__ = ["LightEngine"]


class LightEngine:
    """Maintains skylight and block light for a :class:`World`."""

    #: Radius of the local relight region around a block change.
    RELIGHT_RADIUS = 8

    def __init__(self, world: World) -> None:
        self.world = world

    # -- initial lighting ----------------------------------------------------

    def light_chunk(self, chunk: Chunk, report: WorkReport | None = None) -> int:
        """(Re)light a whole chunk; returns the number of nodes computed.

        Called when a chunk is generated/loaded.  Skylight is a vectorized
        top-down scan; block light BFS-propagates from in-chunk emitters.
        """
        nodes = self._compute_skylight(chunk)
        nodes += self._seed_blocklight(chunk)
        if report is not None:
            report.add(Op.LIGHTING, nodes)
        return nodes

    def _compute_skylight(self, chunk: Chunk) -> int:
        """Top-down skylight: full light until the first opaque block."""
        opaque = OPAQUE_LUT[chunk.blocks]
        # cumulative "any opaque above" per column, scanning from the top.
        blocked = np.cumsum(opaque[:, :, ::-1], axis=2)[:, :, ::-1] > 0
        chunk.skylight[:] = np.where(blocked, 0, MAX_LIGHT).astype(np.uint8)
        # The column scan is vectorized; charge one node per column, not
        # per voxel, so initial chunk lighting stays proportional to the
        # real engine's column-based skylight pass.
        return CHUNK_SIZE * CHUNK_SIZE

    def _seed_blocklight(self, chunk: Chunk) -> int:
        """BFS block light from all emitting blocks inside the chunk."""
        chunk.blocklight[:] = 0
        emission_map = LIGHT_EMISSION_LUT[chunk.blocks]
        xs, zs, ys = np.nonzero(emission_map)
        emitters = [
            (int(x), int(z), int(y), int(emission_map[x, z, y]))
            for x, z, y in zip(xs, zs, ys)
        ]
        nodes = 0
        queue: deque[tuple[int, int, int, int]] = deque()
        for lx, lz, y, emission in emitters:
            chunk.blocklight[lx, lz, y] = emission
            queue.append((lx, lz, y, emission))
        while queue:
            lx, lz, y, level = queue.popleft()
            nodes += 1
            next_level = level - 1
            if next_level <= 0:
                continue
            for dx, dz, dy in _NEIGHBORS:
                nx, nz, ny = lx + dx, lz + dz, y + dy
                if not (
                    0 <= nx < CHUNK_SIZE
                    and 0 <= nz < CHUNK_SIZE
                    and 0 <= ny < WORLD_HEIGHT
                ):
                    continue
                if OPAQUE_LUT[chunk.blocks[nx, nz, ny]]:
                    continue
                if chunk.blocklight[nx, nz, ny] < next_level:
                    chunk.blocklight[nx, nz, ny] = next_level
                    queue.append((nx, nz, ny, next_level))
        return nodes

    # -- incremental relighting ----------------------------------------------

    def relight_column(
        self, x: int, z: int, report: WorkReport | None = None
    ) -> int:
        """Recompute skylight for one column after a block change."""
        chunk = self.world.get_chunk(x >> 4, z >> 4)
        if chunk is None:
            return 0
        lx, lz = x & 15, z & 15
        column = chunk.blocks[lx, lz]
        light = np.full(WORLD_HEIGHT, MAX_LIGHT, dtype=np.uint8)
        opaque_ys = np.flatnonzero(OPAQUE_LUT[column])
        if opaque_ys.size:
            light[: int(opaque_ys[-1]) + 1] = 0
        chunk.skylight[lx, lz] = light
        if report is not None:
            report.add(Op.LIGHTING, WORLD_HEIGHT)
        return WORLD_HEIGHT

    def relight_around(
        self, x: int, y: int, z: int, report: WorkReport | None = None
    ) -> int:
        """Local relight after a block change at ``(x, y, z)``.

        Recomputes the column's skylight and re-propagates block light in a
        bounded neighborhood; the node count (the work) scales with how much
        light actually changes, which is what makes collapsing structures
        expensive in MLGs.
        """
        nodes = self.relight_column(x, z, report)
        radius = self.RELIGHT_RADIUS
        # Re-seed block light for the touched chunk region: cheap
        # approximation that still scales with emitter density.
        chunk = self.world.get_chunk(x >> 4, z >> 4)
        if chunk is not None:
            region = chunk.blocks[
                max(0, (x & 15) - radius) : (x & 15) + radius + 1,
                max(0, (z & 15) - radius) : (z & 15) + radius + 1,
                max(0, y - radius) : min(WORLD_HEIGHT, y + radius + 1),
            ]
            emitting = int((LIGHT_EMISSION_LUT[region] > 0).sum())
            local_nodes = region.size // 16 + emitting * 32
            nodes += local_nodes
            if report is not None:
                report.add(Op.LIGHTING, local_nodes)
        return nodes

    # -- queries --------------------------------------------------------------

    def light_at(self, x: int, y: int, z: int) -> int:
        """Combined light level (max of sky and block light)."""
        if not self.world.in_bounds_y(y):
            return MAX_LIGHT
        chunk = self.world.get_chunk(x >> 4, z >> 4)
        if chunk is None:
            return MAX_LIGHT
        lx, lz = x & 15, z & 15
        return max(
            int(chunk.skylight[lx, lz, y]), int(chunk.blocklight[lx, lz, y])
        )


_NEIGHBORS = (
    (1, 0, 0),
    (-1, 0, 0),
    (0, 1, 0),
    (0, -1, 0),
    (0, 0, 1),
    (0, 0, -1),
)

