"""Fluid simulation — cellular water/lava spread (§2.2.2 "Fluids").

Water spreads from source blocks into adjacent air with a decreasing level
(stored in the block's aux value, 7 at the source's neighbor down to 1),
and flows downward without level loss.  Flowing water exerts a horizontal
push on item entities — the transport mechanism the Farm world's kelp farm
and item sorter rely on (§3.3.1).  Lava spreads the same way but slower
(every third fluid tick), with a shorter reach, and without pushing items.

Each due batch is processed as one chunk-grouped numpy pass: bulk-read the
cells and their neighborhoods from a tick-start snapshot, classify
support / flow-down / sideways spread as masks, merge the writes (max
fluid level wins, any fluid write beats a clear — the same outcome the
sequential scalar loop produces regardless of queue order), and apply
them through :meth:`World.set_blocks_bulk`.  A scalar reference
implementation is kept (``batched=False``) and pinned bit-identical on
quiescent scenarios by the parity tests.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.mlg.blocks import Block
from repro.mlg.workreport import Op, WorkReport
from repro.mlg.world import World

__all__ = ["FluidEngine"]

#: Water updates run every 5 game ticks (vanilla's fluid tick rate).
WATER_TICK_INTERVAL = 5
#: Lava is slower: one update every 15 game ticks (a multiple of the
#: water interval so both queues drain on a shared fluid tick).
LAVA_TICK_INTERVAL = 15
#: Maximum horizontal spread level for water.
MAX_FLOW_LEVEL = 7
#: Maximum horizontal spread level for lava (shorter reach than water).
MAX_LAVA_FLOW_LEVEL = 3

#: Neighborhood offsets used by the batched gather, as (dx, dy, dz)
#: columns: self, below, above, +x, -x, +z, -z.
_OFF_X = np.array([0, 0, 0, 1, -1, 0, 0], dtype=np.int64)
_OFF_Y = np.array([0, -1, 1, 0, 0, 0, 0], dtype=np.int64)
_OFF_Z = np.array([0, 0, 0, 0, 0, 1, -1], dtype=np.int64)
#: Column indices into the (n, 7) neighborhood arrays.
_SELF, _BELOW, _ABOVE = 0, 1, 2
_SIDES = slice(3, 7)
#: (dx, dz) for the four side columns, matching _OFF_X/_OFF_Z order.
_SIDE_OFFSETS = ((1, 0), (-1, 0), (0, 1), (0, -1))


class FluidEngine:
    """Schedules and executes fluid spread updates."""

    def __init__(
        self,
        world: World,
        max_updates_per_tick: int = 4096,
        batched: bool = True,
    ) -> None:
        self.world = world
        self.max_updates_per_tick = max_updates_per_tick
        #: ``False`` selects the scalar reference path (parity tests).
        self.batched = batched
        self._queue: deque[tuple[int, int, int]] = deque()
        self._queued: set[tuple[int, int, int]] = set()
        self._lava_queue: deque[tuple[int, int, int]] = deque()
        self._lava_queued: set[tuple[int, int, int]] = set()

    def schedule(self, x: int, y: int, z: int) -> None:
        """Queue a fluid update at a position (idempotent per tick).

        Lava cells go to the slow queue; everything else (including cells
        whose type is not yet known) rides the water-rate queue — a stale
        entry is reclassified, uncharged, when it is popped.
        """
        if self.world.get_block(x, y, z) == Block.LAVA:
            self._schedule_lava(x, y, z)
        else:
            self._schedule_water(x, y, z)

    def _schedule_water(self, x: int, y: int, z: int) -> None:
        key = (x, y, z)
        if key not in self._queued:
            self._queued.add(key)
            self._queue.append(key)

    def _schedule_lava(self, x: int, y: int, z: int) -> None:
        key = (x, y, z)
        if key not in self._lava_queued:
            self._lava_queued.add(key)
            self._lava_queue.append(key)

    def schedule_neighbors(self, x: int, y: int, z: int) -> None:
        """Queue updates for fluid blocks adjacent to a changed block."""
        for nx, ny, nz in self.world.neighbors6(x, y, z):
            block = self.world.get_block(nx, ny, nz)
            if block in (Block.WATER_SOURCE, Block.WATER_FLOW):
                self._schedule_water(nx, ny, nz)
            elif block == Block.LAVA:
                self._schedule_lava(nx, ny, nz)

    def queued_chunks(self) -> set[tuple[int, int]]:
        """Chunks holding scheduled fluid cells (anchors for eviction)."""
        chunks: set[tuple[int, int]] = set()
        for x, _y, z in self._queued:
            chunks.add((x >> 4, z >> 4))
        for x, _y, z in self._lava_queued:
            chunks.add((x >> 4, z >> 4))
        return chunks

    @property
    def pending(self) -> int:
        return len(self._queue) + len(self._lava_queue)

    def tick(self, tick_number: int, report: WorkReport) -> int:
        """Process due fluid updates; returns the number of *effective*
        updates (cells that still held fluid when popped — stale queue
        entries are dropped without charging :data:`Op.FLUID` work)."""
        if tick_number % WATER_TICK_INTERVAL != 0:
            return 0
        budget = self.max_updates_per_tick
        n_water = min(len(self._queue), budget)
        water_cells = [self._queue.popleft() for _ in range(n_water)]
        self._queued.difference_update(water_cells)
        lava_cells: list[tuple[int, int, int]] = []
        if tick_number % LAVA_TICK_INTERVAL == 0:
            n_lava = min(len(self._lava_queue), budget - n_water)
            lava_cells = [self._lava_queue.popleft() for _ in range(n_lava)]
            self._lava_queued.difference_update(lava_cells)
        effective = 0
        if water_cells:
            if self.batched:
                effective += self._update_water_batch(water_cells, report)
            else:
                for x, y, z in water_cells:
                    effective += self._update_water_cell(x, y, z, report)
        if lava_cells:
            if self.batched:
                effective += self._update_lava_batch(lava_cells, report)
            else:
                for x, y, z in lava_cells:
                    effective += self._update_lava_cell(x, y, z, report)
        if effective:
            report.add(Op.FLUID, effective)
        return effective

    # -- batched updates ------------------------------------------------------

    def _gather(self, cells: list[tuple[int, int, int]]):
        """Snapshot the 7-cell neighborhood of every queued position."""
        arr = np.array(cells, dtype=np.int64)
        x, y, z = arr[:, 0], arr[:, 1], arr[:, 2]
        px = (x[:, None] + _OFF_X[None, :]).ravel()
        py = (y[:, None] + _OFF_Y[None, :]).ravel()
        pz = (z[:, None] + _OFF_Z[None, :]).ravel()
        n = len(cells)
        blocks = self.world.blocks_bulk(px, py, pz).reshape(n, 7)
        auxs = self.world.aux_bulk(px, py, pz).reshape(n, 7)
        return x, y, z, blocks, auxs

    def _update_water_batch(
        self, cells: list[tuple[int, int, int]], report: WorkReport
    ) -> int:
        x, y, z, blocks, auxs = self._gather(cells)
        b0 = blocks[:, _SELF]
        a0 = auxs[:, _SELF].astype(np.int64)
        is_src = b0 == Block.WATER_SOURCE
        is_flow = b0 == Block.WATER_FLOW
        effective = is_src | is_flow
        if not effective.any():
            return 0
        above_b = blocks[:, _ABOVE]
        side_b = blocks[:, _SIDES]
        side_a = auxs[:, _SIDES].astype(np.int64)
        below_b = blocks[:, _BELOW]
        below_a = auxs[:, _BELOW].astype(np.int64)
        supported = (
            (above_b == Block.WATER_SOURCE)
            | (above_b == Block.WATER_FLOW)
            | (side_b == Block.WATER_SOURCE).any(axis=1)
            | (
                (side_b == Block.WATER_FLOW) & (side_a > a0[:, None])
            ).any(axis=1)
        )
        return self._spread_batch(
            x, y, z, report,
            effective=effective,
            is_flow=is_flow,
            level=np.where(is_src, MAX_FLOW_LEVEL + 1, a0),
            supported=supported,
            below_is_air=below_b == Block.AIR,
            below_refreshable=(below_b == Block.WATER_FLOW)
            & (below_a < MAX_FLOW_LEVEL),
            side_b=side_b,
            side_a=side_a,
            # A water flow's aux may be raised whenever it is weaker.
            side_raisable=side_b == Block.WATER_FLOW,
            flow_block=Block.WATER_FLOW,
            max_level=MAX_FLOW_LEVEL,
            schedule=self._schedule_water,
        )

    def _update_lava_batch(
        self, cells: list[tuple[int, int, int]], report: WorkReport
    ) -> int:
        x, y, z, blocks, auxs = self._gather(cells)
        b0 = blocks[:, _SELF]
        a0 = auxs[:, _SELF].astype(np.int64)
        is_lava = b0 == Block.LAVA
        if not is_lava.any():
            return 0
        is_src = is_lava & (a0 == 0)
        above_b = blocks[:, _ABOVE]
        side_b = blocks[:, _SIDES]
        side_a = auxs[:, _SIDES].astype(np.int64)
        below_b = blocks[:, _BELOW]
        below_a = auxs[:, _BELOW].astype(np.int64)
        side_lava = side_b == Block.LAVA
        supported = (
            (above_b == Block.LAVA)
            | (side_lava & (side_a == 0)).any(axis=1)
            | (side_lava & (side_a > a0[:, None])).any(axis=1)
        )
        return self._spread_batch(
            x, y, z, report,
            effective=is_lava,
            is_flow=is_lava & (a0 > 0),
            level=np.where(is_src, MAX_LAVA_FLOW_LEVEL + 1, a0),
            supported=supported,
            below_is_air=below_b == Block.AIR,
            below_refreshable=(below_b == Block.LAVA)
            & (below_a > 0)
            & (below_a < MAX_LAVA_FLOW_LEVEL),
            side_b=side_b,
            side_a=side_a,
            # aux 0 marks a lava *source*; only flows (aux > 0) may be
            # raised.
            side_raisable=side_lava & (side_a > 0),
            flow_block=Block.LAVA,
            max_level=MAX_LAVA_FLOW_LEVEL,
            schedule=self._schedule_lava,
        )

    def _spread_batch(
        self,
        x: np.ndarray,
        y: np.ndarray,
        z: np.ndarray,
        report: WorkReport,
        effective: np.ndarray,
        is_flow: np.ndarray,
        level: np.ndarray,
        supported: np.ndarray,
        below_is_air: np.ndarray,
        below_refreshable: np.ndarray,
        side_b: np.ndarray,
        side_a: np.ndarray,
        side_raisable: np.ndarray,
        flow_block: int,
        max_level: int,
        schedule,
    ) -> int:
        """Shared spread kernel: classify clear/down/refresh/sideways from
        the snapshot masks, merge the writes, apply, and reschedule."""
        clear = is_flow & ~supported
        active = effective & ~clear
        below_in_bounds = y - 1 >= 0
        down = active & below_in_bounds & below_is_air
        refresh = active & below_in_bounds & ~down & below_refreshable
        sideways = active & ~down & ~refresh & (level - 1 > 0)
        next_level = level - 1

        # Collect writes: (x, y, z, level, kind).  kind 0 = clear self,
        # kind 1 = full block write (snapshot target was AIR), kind 2 =
        # aux raise (snapshot target was already this fluid's flow).
        wx: list[np.ndarray] = []
        wy: list[np.ndarray] = []
        wz: list[np.ndarray] = []
        wl: list[np.ndarray] = []
        wk: list[np.ndarray] = []

        def _collect(mask, tx, ty, tz, lvl, kind):
            idx = np.flatnonzero(mask)
            if idx.size == 0:
                return
            wx.append(tx[idx])
            wy.append(ty[idx])
            wz.append(tz[idx])
            lvl = np.broadcast_to(lvl, mask.shape)
            wl.append(lvl[idx])
            wk.append(np.full(idx.size, kind, dtype=np.int64))

        _collect(clear, x, y, z, np.zeros(len(x), dtype=np.int64), 0)
        _collect(down, x, y - 1, z, np.full(len(x), max_level), 1)
        _collect(refresh, x, y - 1, z, np.full(len(x), max_level), 2)
        for col, (dx, dz) in enumerate(_SIDE_OFFSETS):
            nb = side_b[:, col]
            na = side_a[:, col]
            into_air = sideways & (nb == Block.AIR)
            raise_aux = (
                sideways & side_raisable[:, col] & (na < next_level)
            )
            _collect(into_air, x + dx, y, z + dz, next_level, 1)
            _collect(raise_aux, x + dx, y, z + dz, next_level, 2)

        self._apply_writes(
            wx, wy, wz, wl, wk,
            flow_block=flow_block,
            schedule=schedule,
            report=report,
        )
        # Cleared cells wake their fluid neighbors, exactly as the scalar
        # path's schedule_neighbors does.
        for i in np.flatnonzero(clear):
            self.schedule_neighbors(int(x[i]), int(y[i]), int(z[i]))
        return int(effective.sum())

    def _apply_writes(
        self,
        wx: list[np.ndarray],
        wy: list[np.ndarray],
        wz: list[np.ndarray],
        wl: list[np.ndarray],
        wk: list[np.ndarray],
        flow_block: int,
        schedule,
        report: WorkReport,
    ) -> None:
        """Merge and apply a batch's collected writes.

        Duplicate targets resolve exactly like the sequential scalar loop:
        the maximum fluid level wins, and any fluid write into a position
        beats that position clearing itself (the neighbor's spread re-fills
        the cell whichever order the queue presented them in).
        """
        if not wx:
            return
        x = np.concatenate(wx)
        y = np.concatenate(wy)
        z = np.concatenate(wz)
        lvl = np.concatenate(wl)
        kind = np.concatenate(wk)
        # Sort by (position, kind, level) so the last entry per position
        # is the winning write: aux raises (kind 2) > block writes (1) >
        # clears (0); within a kind the highest level wins.
        key = (
            ((x & 0xFFFFFF) << 40) | ((z & 0xFFFFFF) << 16) | (y & 0xFFFF)
        )
        order = np.lexsort((lvl, kind, key))
        key, x, y, z = key[order], x[order], y[order], z[order]
        lvl, kind = lvl[order], kind[order]
        last = np.ones(len(key), dtype=bool)
        last[:-1] = key[1:] != key[:-1]
        x, y, z = x[last], y[last], z[last]
        lvl, kind = lvl[last], kind[last]

        blocks_mask = kind <= 1
        if blocks_mask.any():
            bx, by, bz = x[blocks_mask], y[blocks_mask], z[blocks_mask]
            blvl = lvl[blocks_mask]
            new_blocks = np.where(
                kind[blocks_mask] == 0, Block.AIR, flow_block
            ).astype(np.uint8)
            changed = self.world.set_blocks_bulk(
                bx, by, bz, new_blocks, auxs=blvl.astype(np.uint8)
            )
            if changed:
                report.add(Op.BLOCK_ADD_REMOVE, changed)
        aux_mask = kind == 2
        if aux_mask.any():
            self.world.set_aux_bulk(
                x[aux_mask], y[aux_mask], z[aux_mask], lvl[aux_mask]
            )
        # Every written target re-checks itself on the next due tick.
        for i in range(len(x)):
            if kind[i] != 0:
                schedule(int(x[i]), int(y[i]), int(z[i]))

    # -- scalar reference updates ---------------------------------------------

    def _update_water_cell(
        self, x: int, y: int, z: int, report: WorkReport
    ) -> int:
        """Scalar water update; returns 1 when the cell was effective."""
        block = self.world.get_block(x, y, z)
        if block == Block.WATER_SOURCE:
            level = MAX_FLOW_LEVEL + 1
        elif block == Block.WATER_FLOW:
            level = self.world.get_aux(x, y, z)
            if not self._is_supported(x, y, z):
                self.world.set_block(x, y, z, Block.AIR)
                report.add(Op.BLOCK_ADD_REMOVE)
                self.schedule_neighbors(x, y, z)
                return 1
        else:
            return 0
        # Flow down first (full strength), then sideways with decay.
        below = self.world.get_block(x, y - 1, z)
        if y - 1 >= 0:
            if below == Block.AIR:
                self.world.set_block(x, y - 1, z, Block.WATER_FLOW,
                                     aux=MAX_FLOW_LEVEL)
                report.add(Op.BLOCK_ADD_REMOVE)
                self._schedule_water(x, y - 1, z)
                return 1
            if (
                below == Block.WATER_FLOW
                and self.world.get_aux(x, y - 1, z) < MAX_FLOW_LEVEL
            ):
                # Falling water refreshes the weaker flow beneath it —
                # previously only AIR below was ever written, so a
                # lower-level flow under a source stayed stale forever.
                self.world.set_aux(x, y - 1, z, MAX_FLOW_LEVEL)
                self._schedule_water(x, y - 1, z)
                return 1
        next_level = level - 1
        if next_level <= 0:
            return 1
        for nx, nz in ((x + 1, z), (x - 1, z), (x, z + 1), (x, z - 1)):
            neighbor = self.world.get_block(nx, y, nz)
            if neighbor == Block.AIR:
                self.world.set_block(nx, y, nz, Block.WATER_FLOW,
                                     aux=next_level)
                report.add(Op.BLOCK_ADD_REMOVE)
                self._schedule_water(nx, y, nz)
            elif (
                neighbor == Block.WATER_FLOW
                and self.world.get_aux(nx, y, nz) < next_level
            ):
                self.world.set_aux(nx, y, nz, next_level)
                self._schedule_water(nx, y, nz)
        return 1

    def _update_lava_cell(
        self, x: int, y: int, z: int, report: WorkReport
    ) -> int:
        """Scalar lava update: slower, shorter-reach water spread."""
        if self.world.get_block(x, y, z) != Block.LAVA:
            return 0
        aux = self.world.get_aux(x, y, z)
        if aux == 0:
            level = MAX_LAVA_FLOW_LEVEL + 1
        else:
            level = aux
            if not self._is_lava_supported(x, y, z):
                self.world.set_block(x, y, z, Block.AIR)
                report.add(Op.BLOCK_ADD_REMOVE)
                self.schedule_neighbors(x, y, z)
                return 1
        below = self.world.get_block(x, y - 1, z)
        if y - 1 >= 0:
            if below == Block.AIR:
                self.world.set_block(x, y - 1, z, Block.LAVA,
                                     aux=MAX_LAVA_FLOW_LEVEL)
                report.add(Op.BLOCK_ADD_REMOVE)
                self._schedule_lava(x, y - 1, z)
                return 1
            below_aux = self.world.get_aux(x, y - 1, z)
            if (
                below == Block.LAVA
                and 0 < below_aux < MAX_LAVA_FLOW_LEVEL
            ):
                self.world.set_aux(x, y - 1, z, MAX_LAVA_FLOW_LEVEL)
                self._schedule_lava(x, y - 1, z)
                return 1
        next_level = level - 1
        if next_level <= 0:
            return 1
        for nx, nz in ((x + 1, z), (x - 1, z), (x, z + 1), (x, z - 1)):
            neighbor = self.world.get_block(nx, y, nz)
            if neighbor == Block.AIR:
                self.world.set_block(nx, y, nz, Block.LAVA, aux=next_level)
                report.add(Op.BLOCK_ADD_REMOVE)
                self._schedule_lava(nx, y, nz)
            elif neighbor == Block.LAVA:
                n_aux = self.world.get_aux(nx, y, nz)
                if 0 < n_aux < next_level:
                    self.world.set_aux(nx, y, nz, next_level)
                    self._schedule_lava(nx, y, nz)
        return 1

    def _is_supported(self, x: int, y: int, z: int) -> bool:
        """A flow block survives only while fed by a higher-level neighbor."""
        my_level = self.world.get_aux(x, y, z)
        above = self.world.get_block(x, y + 1, z)
        if above in (Block.WATER_SOURCE, Block.WATER_FLOW):
            return True
        for nx, nz in ((x + 1, z), (x - 1, z), (x, z + 1), (x, z - 1)):
            neighbor = self.world.get_block(nx, y, nz)
            if neighbor == Block.WATER_SOURCE:
                return True
            if (
                neighbor == Block.WATER_FLOW
                and self.world.get_aux(nx, y, nz) > my_level
            ):
                return True
        return False

    def _is_lava_supported(self, x: int, y: int, z: int) -> bool:
        """Flowing lava survives while fed by a source or stronger flow."""
        my_level = self.world.get_aux(x, y, z)
        if self.world.get_block(x, y + 1, z) == Block.LAVA:
            return True
        for nx, nz in ((x + 1, z), (x - 1, z), (x, z + 1), (x, z - 1)):
            if self.world.get_block(nx, y, nz) != Block.LAVA:
                continue
            n_aux = self.world.get_aux(nx, y, nz)
            if n_aux == 0 or n_aux > my_level:
                return True
        return False

    # -- item transport -------------------------------------------------------

    def flow_vector(self, x: int, y: int, z: int) -> tuple[float, float]:
        """Horizontal push (blocks/s) that water at a position applies.

        Flowing water pushes towards its lowest-level neighbor; source and
        still water push nowhere.  Lava exerts no item push.
        """
        block = self.world.get_block(x, y, z)
        if block != Block.WATER_FLOW:
            return (0.0, 0.0)
        my_level = self.world.get_aux(x, y, z)
        best = (0.0, 0.0)
        best_level = my_level
        for dx, dz in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, nz = x + dx, z + dz
            neighbor = self.world.get_block(nx, y, nz)
            if neighbor == Block.WATER_FLOW:
                level = self.world.get_aux(nx, y, nz)
                if level < best_level:
                    best_level = level
                    best = (float(dx), float(dz))
            elif neighbor == Block.AIR and self.world.get_block(
                nx, y - 1, nz
            ) in (Block.WATER_FLOW, Block.WATER_SOURCE):
                return (float(dx) * 2.0, float(dz) * 2.0)
        scale = 1.4
        return (best[0] * scale, best[1] * scale)
