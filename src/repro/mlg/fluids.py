"""Fluid simulation — cellular water/lava spread (§2.2.2 "Fluids").

Water spreads from source blocks into adjacent air with a decreasing level
(stored in the block's aux value, 7 at the source's neighbor down to 1),
and flows downward without level loss.  Flowing water exerts a horizontal
push on item entities — the transport mechanism the Farm world's kelp farm
and item sorter rely on (§3.3.1).
"""

from __future__ import annotations

from collections import deque

from repro.mlg.blocks import Block
from repro.mlg.workreport import Op, WorkReport
from repro.mlg.world import World

__all__ = ["FluidEngine"]

#: Water updates run every 5 game ticks (vanilla's fluid tick rate).
WATER_TICK_INTERVAL = 5
#: Maximum horizontal spread level.
MAX_FLOW_LEVEL = 7


class FluidEngine:
    """Schedules and executes fluid spread updates."""

    def __init__(self, world: World, max_updates_per_tick: int = 4096) -> None:
        self.world = world
        self.max_updates_per_tick = max_updates_per_tick
        self._queue: deque[tuple[int, int, int]] = deque()
        self._queued: set[tuple[int, int, int]] = set()

    def schedule(self, x: int, y: int, z: int) -> None:
        """Queue a fluid update at a position (idempotent per tick)."""
        key = (x, y, z)
        if key not in self._queued:
            self._queued.add(key)
            self._queue.append(key)

    def schedule_neighbors(self, x: int, y: int, z: int) -> None:
        """Queue updates for fluid blocks adjacent to a changed block."""
        for nx, ny, nz in self.world.neighbors6(x, y, z):
            block = self.world.get_block(nx, ny, nz)
            if block in (Block.WATER_SOURCE, Block.WATER_FLOW, Block.LAVA):
                self.schedule(nx, ny, nz)

    @property
    def pending(self) -> int:
        return len(self._queue)

    def tick(self, tick_number: int, report: WorkReport) -> int:
        """Process due fluid updates; returns the number processed."""
        if tick_number % WATER_TICK_INTERVAL != 0:
            return 0
        processed = 0
        budget = min(len(self._queue), self.max_updates_per_tick)
        for _ in range(budget):
            x, y, z = self._queue.popleft()
            self._queued.discard((x, y, z))
            self._update_cell(x, y, z, report)
            processed += 1
        if processed:
            report.add(Op.FLUID, processed)
        return processed

    def _update_cell(self, x: int, y: int, z: int, report: WorkReport) -> None:
        block = self.world.get_block(x, y, z)
        if block == Block.WATER_SOURCE:
            level = MAX_FLOW_LEVEL + 1
        elif block == Block.WATER_FLOW:
            level = self.world.get_aux(x, y, z)
            if not self._is_supported(x, y, z):
                self.world.set_block(x, y, z, Block.AIR)
                report.add(Op.BLOCK_ADD_REMOVE)
                self.schedule_neighbors(x, y, z)
                return
        else:
            return
        # Flow down first (full strength), then sideways with decay.
        below = self.world.get_block(x, y - 1, z)
        if below == Block.AIR and y - 1 >= 0:
            self.world.set_block(x, y - 1, z, Block.WATER_FLOW,
                                 aux=MAX_FLOW_LEVEL)
            report.add(Op.BLOCK_ADD_REMOVE)
            self.schedule(x, y - 1, z)
            return
        next_level = level - 1
        if next_level <= 0:
            return
        for nx, nz in ((x + 1, z), (x - 1, z), (x, z + 1), (x, z - 1)):
            neighbor = self.world.get_block(nx, y, nz)
            if neighbor == Block.AIR:
                self.world.set_block(nx, y, nz, Block.WATER_FLOW,
                                     aux=next_level)
                report.add(Op.BLOCK_ADD_REMOVE)
                self.schedule(nx, y, nz)
            elif (
                neighbor == Block.WATER_FLOW
                and self.world.get_aux(nx, y, nz) < next_level
            ):
                self.world.set_aux(nx, y, nz, next_level)
                self.schedule(nx, y, nz)

    def _is_supported(self, x: int, y: int, z: int) -> bool:
        """A flow block survives only while fed by a higher-level neighbor."""
        my_level = self.world.get_aux(x, y, z)
        above = self.world.get_block(x, y + 1, z)
        if above in (Block.WATER_SOURCE, Block.WATER_FLOW):
            return True
        for nx, nz in ((x + 1, z), (x - 1, z), (x, z + 1), (x, z - 1)):
            neighbor = self.world.get_block(nx, y, nz)
            if neighbor == Block.WATER_SOURCE:
                return True
            if (
                neighbor == Block.WATER_FLOW
                and self.world.get_aux(nx, y, nz) > my_level
            ):
                return True
        return False

    # -- item transport -------------------------------------------------------

    def flow_vector(self, x: int, y: int, z: int) -> tuple[float, float]:
        """Horizontal push (blocks/s) that water at a position applies.

        Flowing water pushes towards its lowest-level neighbor; source and
        still water push nowhere.
        """
        block = self.world.get_block(x, y, z)
        if block != Block.WATER_FLOW:
            return (0.0, 0.0)
        my_level = self.world.get_aux(x, y, z)
        best = (0.0, 0.0)
        best_level = my_level
        for dx, dz in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, nz = x + dx, z + dz
            neighbor = self.world.get_block(nx, y, nz)
            if neighbor == Block.WATER_FLOW:
                level = self.world.get_aux(nx, y, nz)
                if level < best_level:
                    best_level = level
                    best = (float(dx), float(dz))
            elif neighbor == Block.AIR and self.world.get_block(
                nx, y - 1, nz
            ) in (Block.WATER_FLOW, Block.WATER_SOURCE):
                return (float(dx) * 2.0, float(dz) * 2.0)
        scale = 1.4
        return (best[0] * scale, best[1] * scale)
