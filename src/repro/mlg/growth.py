"""Plant growth via random ticks (§2.2.2 "Plant Growth").

Each loaded chunk receives ``RANDOM_TICK_SPEED`` random block ticks per game
tick; crops advance growth stages, kelp grows upward through water, and
saplings become trees.  Growth reshapes terrain over time, generating new
workload without player input — one of the paper's environment-based
workload sources.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.mlg.blocks import Block
from repro.mlg.constants import (
    CHUNK_SIZE,
    RANDOM_TICK_SPEED,
    SEA_LEVEL,
    WORLD_HEIGHT,
)
from repro.mlg.workreport import Op, WorkReport
from repro.mlg.world import World

__all__ = ["GrowthEngine", "CROP_MATURE_STAGE"]

#: Crops are harvestable at this aux stage.
CROP_MATURE_STAGE = 7
#: Maximum kelp stalk height.
KELP_MAX_HEIGHT = 12


class GrowthEngine:
    """Applies random ticks to loaded chunks."""

    def __init__(self, world: World, rng: np.random.Generator) -> None:
        self.world = world
        self.rng = rng
        #: Positions where a crop matured this tick (harvesters consume).
        self.matured: list[tuple[int, int, int]] = []

    def tick(self, report: WorkReport) -> int:
        """Run random ticks on every loaded chunk; returns ticks applied.

        One vectorized gather reads every drawn position across every
        loaded chunk at once; only the rare CROP/KELP/SAPLING hits are
        dispatched to the scalar growth handlers.  Draw order and handler
        dispatch order match :meth:`tick_scalar` exactly, so both paths
        are bit-identical for the same RNG state.
        """
        self.matured.clear()
        chunks = list(self.world.loaded_chunks())
        if not chunks:
            return 0
        # Vectorized draw of all random positions for all chunks at once.
        n = len(chunks) * RANDOM_TICK_SPEED
        lxs = self.rng.integers(0, CHUNK_SIZE, size=n)
        lzs = self.rng.integers(0, CHUNK_SIZE, size=n)
        ys = self.rng.integers(0, WORLD_HEIGHT, size=n)
        blocks = np.empty(n, dtype=np.uint8)
        for i, chunk in enumerate(chunks):
            sl = slice(i * RANDOM_TICK_SPEED, (i + 1) * RANDOM_TICK_SPEED)
            blocks[sl] = chunk.blocks[lxs[sl], lzs[sl], ys[sl]]
        heap = np.flatnonzero(
            (blocks == Block.CROP)
            | (blocks == Block.KELP)
            | (blocks == Block.SAPLING)
        ).tolist()
        heapq.heapify(heap)
        while heap:
            k = heapq.heappop(heap)
            chunk = chunks[k // RANDOM_TICK_SPEED]
            lx, lz, y = int(lxs[k]), int(lzs[k]), int(ys[k])
            # Re-read live: an earlier hit this tick (a sapling's canopy,
            # growing kelp) may have overwritten a later drawn position.
            block = int(chunk.blocks[lx, lz, y])
            if block == Block.CROP:
                self._grow_crop(chunk, lx, lz, y)
            elif block == Block.KELP:
                grown_y = self._grow_kelp(chunk, lx, lz, y, report)
                if grown_y is not None:
                    # Kelp growth is the one mutation that can turn a
                    # later snapshot-miss into a live hit; promote any
                    # remaining draw of this chunk that landed on the
                    # freshly grown cell so dispatch matches the scalar
                    # loop exactly.
                    chunk_end = (k // RANDOM_TICK_SPEED + 1) * RANDOM_TICK_SPEED
                    for j in range(k + 1, chunk_end):
                        if (
                            int(lxs[j]) == lx
                            and int(lzs[j]) == lz
                            and int(ys[j]) == grown_y
                        ):
                            heapq.heappush(heap, j)
            elif block == Block.SAPLING:
                self._grow_sapling(chunk, lx, lz, y, report)
        report.add(Op.GROWTH, n)
        return n

    def tick_scalar(self, report: WorkReport) -> int:
        """Scalar reference for :meth:`tick` (per-chunk per-draw loop),
        kept for the batched-vs-scalar parity fixtures."""
        self.matured.clear()
        applied = 0
        chunks = list(self.world.loaded_chunks())
        if not chunks:
            return 0
        n = len(chunks) * RANDOM_TICK_SPEED
        lxs = self.rng.integers(0, CHUNK_SIZE, size=n)
        lzs = self.rng.integers(0, CHUNK_SIZE, size=n)
        ys = self.rng.integers(0, WORLD_HEIGHT, size=n)
        for i, chunk in enumerate(chunks):
            base = i * RANDOM_TICK_SPEED
            for j in range(RANDOM_TICK_SPEED):
                lx = int(lxs[base + j])
                lz = int(lzs[base + j])
                y = int(ys[base + j])
                block = int(chunk.blocks[lx, lz, y])
                applied += 1
                if block == Block.CROP:
                    self._grow_crop(chunk, lx, lz, y)
                elif block == Block.KELP:
                    self._grow_kelp(chunk, lx, lz, y, report)
                elif block == Block.SAPLING:
                    self._grow_sapling(chunk, lx, lz, y, report)
        report.add(Op.GROWTH, applied)
        return applied

    def _grow_crop(self, chunk, lx: int, lz: int, y: int) -> None:
        stage = int(chunk.aux[lx, lz, y])
        if stage < CROP_MATURE_STAGE:
            chunk.aux[lx, lz, y] = stage + 1
            chunk.dirty = True
            if stage + 1 == CROP_MATURE_STAGE:
                x = chunk.cx * CHUNK_SIZE + lx
                z = chunk.cz * CHUNK_SIZE + lz
                self.matured.append((x, y, z))

    def _grow_kelp(
        self, chunk, lx: int, lz: int, y: int, report: WorkReport
    ) -> int | None:
        """Returns the y the stalk grew into, or None if it did not grow."""
        # Kelp grows one block up through water, bounded by stalk height.
        top = y
        while (
            top + 1 < WORLD_HEIGHT
            and chunk.blocks[lx, lz, top + 1] == Block.KELP
        ):
            top += 1
        base = y
        while base > 0 and chunk.blocks[lx, lz, base - 1] == Block.KELP:
            base -= 1
        if top - base + 1 >= KELP_MAX_HEIGHT:
            return None
        above = top + 1
        if (
            above < min(SEA_LEVEL, WORLD_HEIGHT)
            and chunk.blocks[lx, lz, above] == Block.WATER_SOURCE
        ):
            x = chunk.cx * CHUNK_SIZE + lx
            z = chunk.cz * CHUNK_SIZE + lz
            self.world.set_block(x, above, z, Block.KELP)
            report.add(Op.BLOCK_ADD_REMOVE)
            return above
        return None

    def _grow_sapling(
        self, chunk, lx: int, lz: int, y: int, report: WorkReport
    ) -> None:
        if self.rng.random() > 0.2 or y + 6 >= WORLD_HEIGHT:
            return
        x = chunk.cx * CHUNK_SIZE + lx
        z = chunk.cz * CHUNK_SIZE + lz
        for dy in range(5):
            self.world.set_block(x, y + dy, z, Block.WOOD)
        for dx in range(-2, 3):
            for dz in range(-2, 3):
                for dy in range(3, 6):
                    if abs(dx) + abs(dz) + abs(dy - 4) <= 4:
                        if (
                            self.world.get_block(x + dx, y + dy, z + dz)
                            == Block.AIR
                        ):
                            self.world.set_block(
                                x + dx, y + dy, z + dz, Block.LEAVES
                            )
        report.add(Op.BLOCK_ADD_REMOVE, 5 + 20)
