"""Plant growth via random ticks (§2.2.2 "Plant Growth").

Each loaded chunk receives ``RANDOM_TICK_SPEED`` random block ticks per game
tick; crops advance growth stages, kelp grows upward through water, and
saplings become trees.  Growth reshapes terrain over time, generating new
workload without player input — one of the paper's environment-based
workload sources.
"""

from __future__ import annotations

import numpy as np

from repro.mlg.blocks import Block
from repro.mlg.constants import (
    CHUNK_SIZE,
    RANDOM_TICK_SPEED,
    SEA_LEVEL,
    WORLD_HEIGHT,
)
from repro.mlg.workreport import Op, WorkReport
from repro.mlg.world import World

__all__ = ["GrowthEngine", "CROP_MATURE_STAGE"]

#: Crops are harvestable at this aux stage.
CROP_MATURE_STAGE = 7
#: Maximum kelp stalk height.
KELP_MAX_HEIGHT = 12


class GrowthEngine:
    """Applies random ticks to loaded chunks."""

    def __init__(self, world: World, rng: np.random.Generator) -> None:
        self.world = world
        self.rng = rng
        #: Positions where a crop matured this tick (harvesters consume).
        self.matured: list[tuple[int, int, int]] = []

    def tick(self, report: WorkReport) -> int:
        """Run random ticks on every loaded chunk; returns ticks applied."""
        self.matured.clear()
        applied = 0
        chunks = list(self.world.loaded_chunks())
        if not chunks:
            return 0
        # Vectorized draw of all random positions for all chunks at once.
        n = len(chunks) * RANDOM_TICK_SPEED
        lxs = self.rng.integers(0, CHUNK_SIZE, size=n)
        lzs = self.rng.integers(0, CHUNK_SIZE, size=n)
        ys = self.rng.integers(0, WORLD_HEIGHT, size=n)
        for i, chunk in enumerate(chunks):
            base = i * RANDOM_TICK_SPEED
            for j in range(RANDOM_TICK_SPEED):
                lx = int(lxs[base + j])
                lz = int(lzs[base + j])
                y = int(ys[base + j])
                block = int(chunk.blocks[lx, lz, y])
                applied += 1
                if block == Block.CROP:
                    self._grow_crop(chunk, lx, lz, y)
                elif block == Block.KELP:
                    self._grow_kelp(chunk, lx, lz, y, report)
                elif block == Block.SAPLING:
                    self._grow_sapling(chunk, lx, lz, y, report)
        report.add(Op.GROWTH, applied)
        return applied

    def _grow_crop(self, chunk, lx: int, lz: int, y: int) -> None:
        stage = int(chunk.aux[lx, lz, y])
        if stage < CROP_MATURE_STAGE:
            chunk.aux[lx, lz, y] = stage + 1
            chunk.dirty = True
            if stage + 1 == CROP_MATURE_STAGE:
                x = chunk.cx * CHUNK_SIZE + lx
                z = chunk.cz * CHUNK_SIZE + lz
                self.matured.append((x, y, z))

    def _grow_kelp(
        self, chunk, lx: int, lz: int, y: int, report: WorkReport
    ) -> None:
        # Kelp grows one block up through water, bounded by stalk height.
        top = y
        while (
            top + 1 < WORLD_HEIGHT
            and chunk.blocks[lx, lz, top + 1] == Block.KELP
        ):
            top += 1
        base = y
        while base > 0 and chunk.blocks[lx, lz, base - 1] == Block.KELP:
            base -= 1
        if top - base + 1 >= KELP_MAX_HEIGHT:
            return
        above = top + 1
        if (
            above < min(SEA_LEVEL, WORLD_HEIGHT)
            and chunk.blocks[lx, lz, above] == Block.WATER_SOURCE
        ):
            x = chunk.cx * CHUNK_SIZE + lx
            z = chunk.cz * CHUNK_SIZE + lz
            self.world.set_block(x, above, z, Block.KELP)
            report.add(Op.BLOCK_ADD_REMOVE)

    def _grow_sapling(
        self, chunk, lx: int, lz: int, y: int, report: WorkReport
    ) -> None:
        if self.rng.random() > 0.2 or y + 6 >= WORLD_HEIGHT:
            return
        x = chunk.cx * CHUNK_SIZE + lx
        z = chunk.cz * CHUNK_SIZE + lz
        for dy in range(5):
            self.world.set_block(x, y + dy, z, Block.WOOD)
        for dx in range(-2, 3):
            for dz in range(-2, 3):
                for dy in range(3, 6):
                    if abs(dx) + abs(dz) + abs(dy - 4) <= 4:
                        if (
                            self.world.get_block(x + dx, y + dy, z + dz)
                            == Block.AIR
                        ):
                            self.world.set_block(
                                x + dx, y + dy, z + dz, Block.LEAVES
                            )
        report.add(Op.BLOCK_ADD_REMOVE, 5 + 20)
