"""Entity model (§2.2.3): anything in the world that is not terrain.

An :class:`Entity` is a lightweight *handle* over one slot of the
:class:`repro.mlg.entity_store.EntityStore` struct-of-arrays — attribute
access reads and writes the backing arrays, so scalar call sites (mob AI,
TNT priming, workload hooks) and the vectorized physics kernel always see
the same state.  Kinds:

* ``ITEM`` — dropped resources; transported by water flows, merged into
  stacks by PaperMC's optimization, despawn after five minutes;
* ``MOB`` — NPCs with wander/goal AI that pathfind over live terrain;
* ``TNT`` — primed explosives with a fuse (see :mod:`repro.mlg.tnt`);
* ``PLAYER`` — the server-side avatar of a connected client.

When an entity is reaped its slot is recycled; the handle is *detached*
onto a frozen copy of its final state, so stale references (a farm
platform's mob list, a test's local variable) keep reading the dead
entity's last values instead of whatever entity reuses the slot.
"""

from __future__ import annotations

from math import floor

from repro.mlg.entity_store import KIND_NAME, EntityStore

__all__ = ["EntityKind", "Entity"]

#: Gravity in blocks per tick squared (Minecraft-like).
GRAVITY_PER_TICK = 0.08
#: Horizontal/vertical velocity damping per tick.
DRAG = 0.98


class EntityKind:
    ITEM = "item"
    MOB = "mob"
    TNT = "tnt"
    PLAYER = "player"

    PHYSICAL = (ITEM, MOB, TNT)


class _DetachedSlot:
    """Frozen single-slot copy of a reaped entity's final state.

    Mimics the store's array-attribute shape (``store.x[slot]``) with
    plain one-element lists, so :class:`Entity` properties need no branch.
    """

    __slots__ = (
        "eid", "kind", "alive", "moved", "x", "y", "z",
        "vx", "vy", "vz", "age", "fuse", "stack",
    )

    def __init__(self, store: EntityStore, slot: int) -> None:
        self.eid = [int(store.eid[slot])]
        self.kind = [int(store.kind[slot])]
        self.alive = [False]
        self.moved = [bool(store.moved[slot])]
        self.x = [float(store.x[slot])]
        self.y = [float(store.y[slot])]
        self.z = [float(store.z[slot])]
        self.vx = [float(store.vx[slot])]
        self.vy = [float(store.vy[slot])]
        self.vz = [float(store.vz[slot])]
        self.age = [int(store.age[slot])]
        self.fuse = [int(store.fuse[slot])]
        self.stack = [int(store.stack[slot])]


class Entity:
    """Handle over one store slot; positions in blocks, velocities in
    blocks/tick.  Created only by the entity manager."""

    __slots__ = ("_store", "_slot", "eid", "goal", "path", "path_index")

    def __init__(self, store: EntityStore, slot: int, eid: int) -> None:
        self._store = store
        self._slot = slot
        self.eid = eid
        #: Optional navigation target for mobs, set by farm constructs.
        self.goal: tuple[int, int, int] | None = None
        self.path: list[tuple[int, int, int]] | None = None
        self.path_index = 0

    def _detach(self) -> None:
        """Freeze the handle onto a copy of its slot (called at reap)."""
        self._store = _DetachedSlot(self._store, self._slot)
        self._slot = 0

    # -- slot-backed state ---------------------------------------------------

    @property
    def kind(self) -> str:
        return KIND_NAME[int(self._store.kind[self._slot])]

    @property
    def alive(self) -> bool:
        return bool(self._store.alive[self._slot])

    @alive.setter
    def alive(self, value: bool) -> None:
        self._store.alive[self._slot] = value

    @property
    def moved(self) -> bool:
        """True when the last tick changed this entity's position."""
        return bool(self._store.moved[self._slot])

    @moved.setter
    def moved(self, value: bool) -> None:
        self._store.moved[self._slot] = value

    @property
    def x(self) -> float:
        return float(self._store.x[self._slot])

    @x.setter
    def x(self, value: float) -> None:
        self._store.x[self._slot] = value

    @property
    def y(self) -> float:
        return float(self._store.y[self._slot])

    @y.setter
    def y(self, value: float) -> None:
        self._store.y[self._slot] = value

    @property
    def z(self) -> float:
        return float(self._store.z[self._slot])

    @z.setter
    def z(self, value: float) -> None:
        self._store.z[self._slot] = value

    @property
    def vx(self) -> float:
        return float(self._store.vx[self._slot])

    @vx.setter
    def vx(self, value: float) -> None:
        self._store.vx[self._slot] = value

    @property
    def vy(self) -> float:
        return float(self._store.vy[self._slot])

    @vy.setter
    def vy(self, value: float) -> None:
        self._store.vy[self._slot] = value

    @property
    def vz(self) -> float:
        return float(self._store.vz[self._slot])

    @vz.setter
    def vz(self, value: float) -> None:
        self._store.vz[self._slot] = value

    @property
    def age_ticks(self) -> int:
        return int(self._store.age[self._slot])

    @age_ticks.setter
    def age_ticks(self, value: int) -> None:
        self._store.age[self._slot] = value

    @property
    def fuse_ticks(self) -> int:
        return int(self._store.fuse[self._slot])

    @fuse_ticks.setter
    def fuse_ticks(self, value: int) -> None:
        self._store.fuse[self._slot] = value

    @property
    def stack_count(self) -> int:
        return int(self._store.stack[self._slot])

    @stack_count.setter
    def stack_count(self, value: int) -> None:
        self._store.stack[self._slot] = value

    # -- derived -------------------------------------------------------------

    @property
    def block_pos(self) -> tuple[int, int, int]:
        """The world block cell the entity currently occupies."""
        store, slot = self._store, self._slot
        return (
            floor(store.x[slot]),
            floor(store.y[slot]),
            floor(store.z[slot]),
        )

    def distance_sq_to(self, x: float, y: float, z: float) -> float:
        store, slot = self._store, self._slot
        dx = store.x[slot] - x
        dy = store.y[slot] - y
        dz = store.z[slot] - z
        return float(dx * dx + dy * dy + dz * dz)

    def __repr__(self) -> str:
        return (
            f"Entity(eid={self.eid}, kind={self.kind!r}, "
            f"pos=({self.x:.1f}, {self.y:.1f}, {self.z:.1f}), "
            f"alive={self.alive})"
        )
