"""Entity model (§2.2.3): anything in the world that is not terrain.

Entities are plain slotted objects updated by the
:class:`repro.mlg.entity_manager.EntityManager`.  Kinds:

* ``ITEM`` — dropped resources; transported by water flows, merged into
  stacks by PaperMC's optimization, despawn after five minutes;
* ``MOB`` — NPCs with wander/goal AI that pathfind over live terrain;
* ``TNT`` — primed explosives with a fuse (see :mod:`repro.mlg.tnt`);
* ``PLAYER`` — the server-side avatar of a connected client.
"""

from __future__ import annotations

__all__ = ["EntityKind", "Entity"]

#: Gravity in blocks per tick squared (Minecraft-like).
GRAVITY_PER_TICK = 0.08
#: Horizontal/vertical velocity damping per tick.
DRAG = 0.98


class EntityKind:
    ITEM = "item"
    MOB = "mob"
    TNT = "tnt"
    PLAYER = "player"

    PHYSICAL = (ITEM, MOB, TNT)


class Entity:
    """One simulated entity; positions in blocks, velocities in blocks/tick."""

    __slots__ = (
        "eid",
        "kind",
        "x",
        "y",
        "z",
        "vx",
        "vy",
        "vz",
        "alive",
        "age_ticks",
        "fuse_ticks",
        "stack_count",
        "goal",
        "path",
        "path_index",
        "moved",
    )

    def __init__(
        self,
        eid: int,
        kind: str,
        x: float,
        y: float,
        z: float,
        vx: float = 0.0,
        vy: float = 0.0,
        vz: float = 0.0,
        fuse_ticks: int = -1,
        stack_count: int = 1,
    ) -> None:
        self.eid = eid
        self.kind = kind
        self.x = x
        self.y = y
        self.z = z
        self.vx = vx
        self.vy = vy
        self.vz = vz
        self.alive = True
        self.age_ticks = 0
        self.fuse_ticks = fuse_ticks
        self.stack_count = stack_count
        #: Optional navigation target for mobs, set by farm constructs.
        self.goal: tuple[int, int, int] | None = None
        self.path: list[tuple[int, int, int]] | None = None
        self.path_index = 0
        #: True when the last tick changed this entity's position.
        self.moved = False

    @property
    def block_pos(self) -> tuple[int, int, int]:
        """The world block cell the entity currently occupies."""
        return (int(self.x // 1), int(self.y // 1), int(self.z // 1))

    def distance_sq_to(self, x: float, y: float, z: float) -> float:
        dx = self.x - x
        dy = self.y - y
        dz = self.z - z
        return dx * dx + dy * dy + dz * dz

    def __repr__(self) -> str:
        return (
            f"Entity(eid={self.eid}, kind={self.kind!r}, "
            f"pos=({self.x:.1f}, {self.y:.1f}, {self.z:.1f}), "
            f"alive={self.alive})"
        )
