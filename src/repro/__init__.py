"""Meterstick reproduction: benchmarking performance variability in
Minecraft-like games (ISPASS 2022).

Subpackages:

* :mod:`repro.metrics` — ISR (Equation 1) and comparison metrics;
* :mod:`repro.mlg` — the Minecraft-like game server simulator;
* :mod:`repro.cloud` — machine/variability models for AWS, Azure, DAS-5;
* :mod:`repro.emulation` — Yardstick-style player emulation;
* :mod:`repro.workloads` — Control, TNT, Farm, Lag, Players;
* :mod:`repro.core` — the Meterstick harness (config, controller, runner);
* :mod:`repro.campaign` — matrix campaigns: parallel, resumable, with a
  ``python -m repro`` CLI;
* :mod:`repro.analysis` — figure/table reproduction helpers.

Quickstart::

    from repro.core import run_iteration
    result = run_iteration("farm", "vanilla", "aws-t3.large", duration_s=60)
    print(result.isr, result.tick_stats()["mean"])
"""

from repro.campaign import CampaignExecutor, CampaignSpec
from repro.core.config import MeterstickConfig
from repro.core.experiment import ExperimentRunner, run_iteration
from repro.metrics import instability_ratio

__version__ = "1.1.0"

__all__ = [
    "CampaignExecutor",
    "CampaignSpec",
    "ExperimentRunner",
    "MeterstickConfig",
    "instability_ratio",
    "run_iteration",
    "__version__",
]
