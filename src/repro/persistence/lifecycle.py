"""Chunk lifecycle management: autosave scheduling and LRU streaming.

The :class:`ChunkLifecycle` is the policy layer between the in-memory
:class:`~repro.mlg.world.World` and the on-disk
:class:`~repro.persistence.store.RegionStore`.  Once per tick the game
loop hands it the tick index, the tick's :class:`WorkReport`, and the
players' view anchors, and it does two jobs:

**Autosave** — every ``autosave_interval_ticks`` the dirty-chunk backlog
is snapshotted and then written back *incrementally*, a bounded batch per
tick (like vanilla's per-tick chunk saving), each saved chunk charged to
``Op.CHUNK_SAVE`` (the Fig. 11 "Autosave" bucket).  Every
``full_flush_every``-th autosave instead writes the whole backlog in one
tick — the classic save-all tick spike the paper's tick-duration tails
show.

**Eviction** — when more than ``max_loaded_chunks`` chunks are resident,
clean chunks outside every player's view distance (plus a one-chunk
hysteresis margin) are dropped, least-recently-viewed first, so the
loaded-chunk count — and therefore ``World.nbytes`` — plateaus instead of
growing forever.  Two invariants hold unconditionally: a dirty chunk is
never evicted, and a chunk is only evicted when it can come back (it is
on disk, in the warm cache, or deterministically regenerable).

Loads stream back in through the world's loader hook: store first, then
the read-only warm cache, then regeneration.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable

from repro.mlg.workreport import Op, WorkReport
from repro.mlg.world import Chunk, World
from repro.persistence.store import RegionStore
from repro.tracing.tracer import NULL_TRACER

__all__ = ["ChunkLifecycle"]

#: View anchor: ((chunk_x, chunk_z), view_distance) per connected player.
ViewAnchor = tuple[tuple[int, int], int]


class ChunkLifecycle:
    """Dirty tracking, autosave, and streaming for one server's world."""

    #: Chunks written per tick while draining an incremental autosave.
    SAVE_CHUNKS_PER_TICK = 16
    #: Hysteresis ring (in chunks) beyond the view distance that eviction
    #: leaves alone, so border-straddling players do not thrash.
    EVICT_MARGIN = 1
    #: Ticks between refreshes of the pinned (simulation-anchor) set.
    #: The anchors' one-chunk ring (16 blocks) comfortably outruns how
    #: far fluid fronts or entities can drift in this window, and it
    #: amortizes the pure-Python anchor walk across over-cap ticks.
    PIN_REFRESH_TICKS = 4

    def __init__(
        self,
        world: World,
        store: RegionStore | None = None,
        cache: RegionStore | None = None,
        *,
        autosave_interval_ticks: int = 900,
        full_flush_every: int = 6,
        max_loaded_chunks: int | None = None,
        relight: Callable[[Chunk], object] | None = None,
        pinned: Callable[[], set[tuple[int, int]]] | None = None,
        tracer=None,
    ) -> None:
        if autosave_interval_ticks < 1:
            raise ValueError(
                f"autosave interval must be >= 1 tick: "
                f"{autosave_interval_ticks!r}"
            )
        if max_loaded_chunks is not None and max_loaded_chunks < 1:
            raise ValueError(
                f"max_loaded_chunks must be >= 1: {max_loaded_chunks!r}"
            )
        self.world = world
        self.store = store
        self.cache = cache
        self.autosave_interval_ticks = autosave_interval_ticks
        self.full_flush_every = full_flush_every
        self.max_loaded_chunks = max_loaded_chunks
        self.relight = relight
        #: Extra chunks to exclude from eviction (active simulation
        #: anchors: fluid queues, redstone nets, entity positions).
        self.pinned = pinned
        #: Span tracer (the owning server's); lifecycle spans nest under
        #: the game loop's "lifecycle" phase span.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Chunks recoverable from disk with their current content.
        self._on_disk: set[tuple[int, int]] = set()
        if store is not None:
            self._on_disk.update(store.chunk_positions())
        if cache is not None:
            self._on_disk.update(cache.chunk_positions())
        self._pinned_cache: set[tuple[int, int]] = set()
        self._pinned_refresh_tick = -(10**9)
        self._pending_save: deque[tuple[int, int]] = deque()
        #: Chunks drained (and charged) this autosave cycle whose region
        #: file has not been written yet — flushed once per region.
        self._staged: list[Chunk] = []
        self._next_autosave_tick = autosave_interval_ticks
        self._autosave_index = 0
        self._last_seen: dict[tuple[int, int], int] = {}
        # -- counters (exported to iteration telemetry) --
        self.chunks_saved = 0
        self.chunks_loaded = 0
        self.chunks_evicted = 0
        self.autosaves = 0
        self.full_flushes = 0
        self.peak_loaded_chunks = 0
        world.set_loader(self._load)

    # -- introspection -------------------------------------------------------

    @property
    def eviction_enabled(self) -> bool:
        return self.max_loaded_chunks is not None

    @property
    def bytes_written(self) -> int:
        return self.store.bytes_written if self.store is not None else 0

    @property
    def bytes_read(self) -> int:
        read = self.store.bytes_read if self.store is not None else 0
        if self.cache is not None:
            read += self.cache.bytes_read
        return read

    def dirty_count(self) -> int:
        return sum(1 for chunk in self.world.loaded_chunks() if chunk.dirty)

    def stats(self) -> dict[str, int]:
        """Counters for the iteration-telemetry ``world`` section."""
        return {
            "chunks_saved": self.chunks_saved,
            "chunks_loaded_from_disk": self.chunks_loaded,
            "chunks_evicted": self.chunks_evicted,
            "autosaves": self.autosaves,
            "full_flushes": self.full_flushes,
            "peak_loaded_chunks": self.peak_loaded_chunks,
            "final_loaded_chunks": self.world.loaded_chunk_count,
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
        }

    # -- the per-tick driver -------------------------------------------------

    def tick(
        self,
        tick_index: int,
        report: WorkReport,
        anchors: Iterable[ViewAnchor],
    ) -> None:
        """Run one tick of lifecycle work (called by the game loop)."""
        count = self.world.loaded_chunk_count
        if count > self.peak_loaded_chunks:
            self.peak_loaded_chunks = count
        if self.store is not None:
            self._autosave(tick_index, report)
        # The in-view set (≈ players × view²) is only materialized on
        # ticks where eviction can actually run: below the cap the whole
        # pass — including the recency bookkeeping — costs nothing.
        # Recency therefore freezes between over-cap episodes, which
        # only coarsens the LRU order among chunks that were all last
        # seen before the episode began.
        if (
            self.eviction_enabled
            and self.world.loaded_chunk_count > self.max_loaded_chunks
        ):
            with self.tracer.span("evict"):
                in_view = self._in_view(anchors)
                for key in in_view:
                    self._last_seen[key] = tick_index
                self._evict(tick_index, in_view)

    # -- loading -------------------------------------------------------------

    def _load(self, cx: int, cz: int) -> Chunk | None:
        """The world's loader hook: store, then warm cache, else miss."""
        chunk = None
        if self.store is not None:
            chunk = self.store.load_chunk(cx, cz)
        if chunk is None and self.cache is not None:
            chunk = self.cache.load_chunk(cx, cz)
        if chunk is None:
            return None
        if self.relight is not None:
            self.relight(chunk)
        self._on_disk.add((cx, cz))
        self.chunks_loaded += 1
        return chunk

    # -- autosave ------------------------------------------------------------

    def _needs_save(self, key: tuple[int, int], chunk: Chunk) -> bool:
        """Dirty, or never persisted (freshly generated counts as both)."""
        return chunk.dirty or key not in self._on_disk

    def _autosave(self, tick_index: int, report: WorkReport) -> None:
        from repro.persistence.region import chunk_to_region

        if tick_index >= self._next_autosave_tick:
            self._next_autosave_tick = tick_index + self.autosave_interval_ticks
            self._autosave_index += 1
            self.autosaves += 1
            # Leftover staged chunks from a cycle that did not finish
            # draining go to disk first, so the new backlog scan (which
            # keys off dirty flags) cannot double-enqueue them.
            self._flush_staged()
            backlog = sorted(
                (
                    (chunk.cx, chunk.cz)
                    for chunk in self.world.loaded_chunks()
                    if self._needs_save((chunk.cx, chunk.cz), chunk)
                ),
                # Region-major order: the incremental drain then touches
                # each region file once, not once per 16-chunk batch.
                key=lambda key: (chunk_to_region(*key), key),
            )
            full = (
                self.full_flush_every > 0
                and self._autosave_index % self.full_flush_every == 0
            )
            if full:
                # The save-all flush: the whole backlog in one tick.
                with self.tracer.span("save_all"):
                    self.full_flushes += 1
                    self._pending_save.clear()
                    written = self._write_chunks(self._collect(backlog))
                    report.add(Op.CHUNK_SAVE, written)
                return
            self._pending_save = deque(backlog)
        if self._pending_save:
            with self.tracer.span("autosave"):
                batch: list[tuple[int, int]] = []
                while (
                    self._pending_save
                    and len(batch) < self.SAVE_CHUNKS_PER_TICK
                ):
                    batch.append(self._pending_save.popleft())
                # Charge the work (deflate + serialize) on the tick it
                # happens, but buffer the region-file write until no more
                # of that region's chunks remain in the backlog — one
                # physical read-modify-write per region per cycle instead
                # of one per batch.  Staged chunks keep their dirty flag
                # (and thus their eviction protection) until they
                # actually hit disk.
                chunks = self._collect(batch)
                if chunks:
                    report.add(Op.CHUNK_SAVE, len(chunks))
                    self._staged.extend(chunks)
                remaining = {
                    chunk_to_region(*key) for key in self._pending_save
                }
                ready = [
                    chunk
                    for chunk in self._staged
                    if chunk_to_region(chunk.cx, chunk.cz) not in remaining
                ]
                if ready:
                    self._staged = [
                        chunk
                        for chunk in self._staged
                        if chunk_to_region(chunk.cx, chunk.cz) in remaining
                    ]
                    self._write_chunks(ready)

    def _collect(self, keys: list[tuple[int, int]]) -> list[Chunk]:
        """Resolve still-saveable chunks (drops vanished/cleaned ones)."""
        chunks: list[Chunk] = []
        staged = {(chunk.cx, chunk.cz) for chunk in self._staged}
        for key in keys:
            chunk = self.world.get_chunk(*key)
            if (
                chunk is not None
                and key not in staged
                and self._needs_save(key, chunk)
            ):
                chunks.append(chunk)
        return chunks

    def _write_chunks(self, chunks: list[Chunk]) -> int:
        """Physically persist chunks and mark them clean/recoverable."""
        if not chunks:
            return 0
        self.store.save_chunks(chunks)
        for chunk in chunks:
            chunk.dirty = False
            self._on_disk.add((chunk.cx, chunk.cz))
        self.chunks_saved += len(chunks)
        return len(chunks)

    def _flush_staged(self) -> None:
        if self._staged:
            staged, self._staged = self._staged, []
            self._write_chunks(staged)

    # -- eviction ------------------------------------------------------------

    def _in_view(
        self, anchors: Iterable[ViewAnchor]
    ) -> set[tuple[int, int]]:
        in_view: set[tuple[int, int]] = set()
        for (ccx, ccz), view in anchors:
            reach = view + self.EVICT_MARGIN
            for cx in range(ccx - reach, ccx + reach + 1):
                for cz in range(ccz - reach, ccz + reach + 1):
                    in_view.add((cx, cz))
        return in_view

    def _evict(
        self, tick_index: int, in_view: set[tuple[int, int]]
    ) -> None:
        over = self.world.loaded_chunk_count - self.max_loaded_chunks
        if over <= 0:
            return
        # Active simulation state (fluid queues, redstone nets, entity
        # positions) reads terrain through the AIR-for-unloaded bulk
        # queries: evicting beneath it would diverge the simulation, not
        # just retime it.  Refreshed every few ticks — the anchors' ring
        # absorbs the staleness — so chronic over-cap phases don't pay
        # the full anchor walk every tick.
        if (
            self.pinned is not None
            and tick_index - self._pinned_refresh_tick
            >= self.PIN_REFRESH_TICKS
        ):
            self._pinned_cache = self.pinned()
            self._pinned_refresh_tick = tick_index
        pinned = self._pinned_cache
        regenerable = self.world.has_generator
        candidates: list[tuple[int, tuple[int, int]]] = []
        for chunk in self.world.loaded_chunks():
            key = (chunk.cx, chunk.cz)
            if key in in_view or key in pinned or chunk.dirty:
                continue
            if key not in self._on_disk:
                # With a store, a not-yet-persisted chunk waits for its
                # autosave (real servers save generated chunks before
                # unloading them); without one, deterministic
                # regeneration is the only way back — and chunks with
                # neither stay resident forever.
                if self.store is not None or not regenerable:
                    continue
            candidates.append((self._last_seen.get(key, -1), key))
        candidates.sort()
        for _, key in candidates[:over]:
            self.world.unload_chunk(*key)
            self._last_seen.pop(key, None)
            self.chunks_evicted += 1
