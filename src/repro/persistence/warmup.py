"""World preparation: pre-generate a workload's world onto disk.

``prepare_world`` builds the workload's starting world once — its eagerly
constructed terrain plus the chunk square every player's connect-time view
load would otherwise generate — and snapshots it into a region-file store.
A campaign with ``warm_world_cache`` enabled then boots every iteration of
every server from the same on-disk seed: the connect burst becomes cheap
``CHUNK_LOAD`` work instead of expensive ``CHUNK_GEN`` work, campaigns run
faster, and every run starts from a bit-identical world (the round-trip is
lossless, verified by ``world.json``'s recorded hash).

This module sits one layer above the rest of the package (it imports the
workload registry); import it as ``repro.persistence.warmup``, not through
the package root, to keep ``repro.mlg.server → repro.persistence`` cycle
free.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.mlg.constants import DEFAULT_VIEW_DISTANCE
from repro.persistence.store import (
    REGION_DIR,
    RegionStore,
    StoreScan,
    world_hash,
)

__all__ = [
    "PrepareReport",
    "WORLD_MANIFEST",
    "ensure_world_cache",
    "inspect_world",
    "prepare_world",
    "world_cache_key",
]

WORLD_MANIFEST = "world.json"

#: Default pre-generation radius, in chunks around the spawn chunk: the
#: default view distance plus a ring for view loads near the area's edge.
DEFAULT_PREPARE_RADIUS = DEFAULT_VIEW_DISTANCE + 2


def world_cache_key(workload: str, scale: float, seed: int) -> str:
    """Directory name of one (workload, scale, seed) warm-cache entry."""
    return f"{workload.lower()}-s{scale:g}-seed{seed}"


@dataclass(frozen=True)
class PrepareReport:
    """What one ``prepare_world`` run produced."""

    path: str
    workload: str
    scale: float
    seed: int
    radius: int
    chunks: int
    bytes_written: int
    world_hash: str

    def to_dict(self) -> dict:
        return asdict(self)


def prepare_world(
    out_dir: str | Path,
    workload_name: str,
    scale: float = 1.0,
    seed: int = 0,
    radius: int = DEFAULT_PREPARE_RADIUS,
) -> PrepareReport:
    """Generate a workload's starting world and snapshot it to ``out_dir``.

    Builds the workload world for ``seed``, forces generation of the
    ``(2·radius+1)²`` chunk square around the spawn chunk, writes every
    loaded chunk into region files, and records a ``world.json`` manifest
    (parameters + content hash) that makes re-preparation idempotent and
    the cache verifiable.

    Any previous snapshot in ``out_dir`` is removed first: region saves
    are read-modify-write, so merging into leftovers would let chunks
    outside the new footprint survive with stale bytes — and the warm
    cache serves *every* chunk it holds.
    """
    import shutil

    from repro.workloads import get_workload

    if radius < 0:
        raise ValueError(f"radius must be >= 0: {radius!r}")
    workload = get_workload(workload_name, scale=scale)
    world = workload.create_world(seed)
    for cx in range(-radius, radius + 1):
        for cz in range(-radius, radius + 1):
            world.ensure_chunk(cx, cz)
    out_dir = Path(out_dir)
    if (out_dir / REGION_DIR).exists():
        shutil.rmtree(out_dir / REGION_DIR)
    (out_dir / WORLD_MANIFEST).unlink(missing_ok=True)
    store = RegionStore(out_dir)
    bytes_written = store.save_chunks(list(world.loaded_chunks()))
    report = PrepareReport(
        path=str(out_dir),
        workload=workload_name.lower(),
        scale=float(scale),
        seed=int(seed),
        radius=int(radius),
        chunks=world.loaded_chunk_count,
        bytes_written=bytes_written,
        world_hash=f"{world_hash(world):08x}",
    )
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / WORLD_MANIFEST).write_text(
        json.dumps(report.to_dict(), indent=2)
    )
    return report


def read_world_manifest(root: str | Path) -> dict | None:
    path = Path(root) / WORLD_MANIFEST
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError:
        return None


def _probe_chunk_matches(
    out_dir: Path, workload: str, scale: float, seed: int
) -> bool:
    """Canary check: sampled stored chunks must equal today's build.

    Parameters matching is not enough — a snapshot restored from an old
    CI cache (or surviving a worldgen change) has a self-consistent
    manifest but stale bytes.  The sample spans both terrain classes:
    the extremes of the footprint (pure generator output) and the
    spawn-adjacent chunks where workloads eagerly construct terrain
    (TNT cuboids, flood basins) — so drift in either the generator or
    the world-construction primitives is caught, for the cost of a few
    chunk builds.
    """
    from repro.persistence.region import serialize_chunk
    from repro.workloads import get_workload

    store = RegionStore(out_dir)
    positions = store.chunk_positions()
    if not positions:
        return False
    sample = {min(positions), max(positions)} | (
        {(0, 0), (1, 1), (2, 2), (3, 3)} & positions
    )
    world = get_workload(workload, scale=scale).create_world(seed)
    for cx, cz in sorted(sample):
        stored = store.load_chunk(cx, cz)
        if stored is None:
            return False
        fresh = world.ensure_chunk(cx, cz)
        if serialize_chunk(stored) != serialize_chunk(fresh):
            return False
    return True


def ensure_world_cache(
    cache_root: str | Path,
    workload: str,
    scale: float,
    seed: int,
    radius: int = DEFAULT_PREPARE_RADIUS,
) -> Path:
    """Prepare ``<cache_root>/<key>`` unless a matching snapshot exists.

    Matching means the recorded manifest's parameters equal the request
    *and* a probe chunk regenerates to the stored bytes — a stale,
    foreign, or generator-drifted directory is re-prepared, so a
    restored CI cache from another commit can never poison a campaign.
    """
    out_dir = Path(cache_root) / world_cache_key(workload, scale, seed)
    manifest = read_world_manifest(out_dir)
    if (
        manifest is not None
        and all(
            manifest.get(key) == value
            for key, value in (
                ("workload", workload.lower()),
                ("scale", float(scale)),
                ("seed", int(seed)),
                ("radius", int(radius)),
            )
        )
        and _probe_chunk_matches(out_dir, workload, scale, seed)
    ):
        return out_dir
    prepare_world(out_dir, workload, scale=scale, seed=seed, radius=radius)
    return out_dir


def inspect_world(root: str | Path) -> dict:
    """Everything ``repro world inspect`` reports about a world directory.

    Walks the region files (recovering per-entry damage reports), loads
    every intact chunk to compute the content hash, and includes the
    ``world.json`` manifest when present so a cache entry can be checked
    against what it claims to contain.
    """
    if not Path(root).is_dir():
        raise FileNotFoundError(f"{root} is not a world directory")
    store = RegionStore(root)
    scan: StoreScan = store.scan()
    from repro.mlg.world import World

    # Hash only what actually decodes: a payload that passes its CRC but
    # fails deserialization must surface as damage, never as a zero-
    # filled chunk baked into the content hash.
    world = World()
    for cx, cz in sorted(store.chunk_positions()):
        chunk = store.load_chunk(cx, cz)
        if chunk is not None:
            world.adopt_chunk(chunk)
    # Fold in decode-stage failures (CRC-valid but undeserializable) —
    # deduplicated, since a re-read region re-records entry damage.
    seen = {(e.cx, e.cz, e.reason) for e in scan.corrupt_entries}
    scan.corrupt_entries.extend(
        entry
        for entry in store.corrupt
        if (entry.cx, entry.cz, entry.reason) not in seen
    )
    return {
        "path": str(Path(root)),
        "regions": scan.regions,
        "chunks": scan.chunks,
        "total_bytes": scan.total_bytes,
        "corrupt_regions": list(scan.corrupt_regions),
        "corrupt_entries": [
            {"cx": entry.cx, "cz": entry.cz, "reason": entry.reason}
            for entry in scan.corrupt_entries
        ],
        "world_hash": f"{world_hash(world):08x}",
        "manifest": read_world_manifest(root),
    }
