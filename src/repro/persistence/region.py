"""Region-file format: 32×32 chunks per file, numpy-native and crash-safe.

A *region* is the unit of world persistence — the same granularity real
Minecraft-like servers use (Anvil ``r.{rx}.{rz}.mca``).  Ours is a single
flat file::

    +-----------------------------+
    | header: magic, version,     |  8 bytes  (``<4sBBH``)
    |         flags, chunk count  |
    +-----------------------------+
    | entry table: one 16-byte    |  ``count`` × ``<BBHIII``
    |   record per stored chunk   |  (lx, lz, reserved, offset,
    |                             |   compressed length, CRC32)
    +-----------------------------+
    | zlib-compressed chunk       |
    |   payloads, concatenated    |
    +-----------------------------+

Chunk payloads are the raw bytes of the three persisted arrays — blocks
(uint8), aux (uint8), heightmap (little-endian int16) — so a load is two
``np.frombuffer`` reshapes away from a live :class:`~repro.mlg.world.Chunk`
(light is recomputed on load, exactly as after generation).

Crash safety is two-layered: whole files are written via temp-file +
``os.replace`` (a killed save leaves either the old region or the new one,
never a torn one), and every entry carries its compressed length and CRC so
a region truncated or corrupted by outside forces is *detected* on read —
intact chunks are recovered, damaged ones are reported, and nothing is
silently zero-filled.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.mlg.constants import CHUNK_SIZE, WORLD_HEIGHT
from repro.mlg.world import Chunk

__all__ = [
    "CorruptEntry",
    "REGION_CHUNKS",
    "RegionCorruptError",
    "chunk_to_region",
    "deserialize_chunk",
    "read_region",
    "region_filename",
    "serialize_chunk",
    "write_region",
]

#: Region edge length, in chunks (32×32 chunks per region file).
REGION_CHUNKS = 32

MAGIC = b"MSRG"
FORMAT_VERSION = 1

_HEADER = struct.Struct("<4sBBH")
_ENTRY = struct.Struct("<BBHIII")

#: Raw (uncompressed) payload size of one serialized chunk.
_BLOCK_BYTES = CHUNK_SIZE * CHUNK_SIZE * WORLD_HEIGHT
_HEIGHTMAP_BYTES = CHUNK_SIZE * CHUNK_SIZE * 2
RAW_CHUNK_BYTES = 2 * _BLOCK_BYTES + _HEIGHTMAP_BYTES

#: zlib level: 6 is the stock speed/ratio trade-off real servers ship.
_ZLIB_LEVEL = 6


class RegionCorruptError(Exception):
    """The region file is unreadable as a whole (bad magic/version/header)."""


@dataclass(frozen=True)
class CorruptEntry:
    """One damaged chunk entry detected while reading a region."""

    cx: int
    cz: int
    reason: str


def chunk_to_region(cx: int, cz: int) -> tuple[int, int]:
    """Region coordinates containing chunk ``(cx, cz)`` (floor division)."""
    return cx >> 5, cz >> 5


def region_filename(rx: int, rz: int) -> str:
    return f"r.{rx}.{rz}.msr"


# -- chunk payloads -----------------------------------------------------------


def serialize_chunk(chunk: Chunk) -> bytes:
    """Raw persisted bytes of one chunk: blocks + aux + heightmap.

    Light arrays are deliberately absent: they are derived state,
    recomputed on load the same way they are computed after generation.
    """
    return (
        chunk.blocks.tobytes()
        + chunk.aux.tobytes()
        + chunk.heightmap.astype("<i2", copy=False).tobytes()
    )


def deserialize_chunk(cx: int, cz: int, raw: bytes) -> Chunk:
    """Rebuild a chunk from its persisted bytes (bit-identical arrays)."""
    if len(raw) != RAW_CHUNK_BYTES:
        raise ValueError(
            f"chunk payload is {len(raw)} bytes, expected {RAW_CHUNK_BYTES}"
        )
    shape = (CHUNK_SIZE, CHUNK_SIZE, WORLD_HEIGHT)
    chunk = Chunk(cx, cz)
    chunk.blocks[:] = np.frombuffer(
        raw, dtype=np.uint8, count=_BLOCK_BYTES, offset=0
    ).reshape(shape)
    chunk.aux[:] = np.frombuffer(
        raw, dtype=np.uint8, count=_BLOCK_BYTES, offset=_BLOCK_BYTES
    ).reshape(shape)
    chunk.heightmap[:] = (
        np.frombuffer(
            raw,
            dtype="<i2",
            count=CHUNK_SIZE * CHUNK_SIZE,
            offset=2 * _BLOCK_BYTES,
        )
        .reshape((CHUNK_SIZE, CHUNK_SIZE))
        .astype(np.int16)
    )
    return chunk


def compress_payload(raw: bytes) -> bytes:
    return zlib.compress(raw, _ZLIB_LEVEL)


# -- whole-region IO ----------------------------------------------------------


def write_region(
    path: str | Path, rx: int, rz: int, payloads: dict[tuple[int, int], bytes]
) -> int:
    """Atomically write one region file; returns the bytes written.

    ``payloads`` maps *chunk* coordinates to already-compressed chunk
    payloads; every chunk must belong to region ``(rx, rz)``.
    """
    path = Path(path)
    entries = []
    blob = bytearray()
    offset = _HEADER.size + _ENTRY.size * len(payloads)
    for (cx, cz), comp in sorted(payloads.items()):
        if chunk_to_region(cx, cz) != (rx, rz):
            raise ValueError(
                f"chunk ({cx}, {cz}) does not belong to region ({rx}, {rz})"
            )
        entries.append(
            _ENTRY.pack(
                cx & (REGION_CHUNKS - 1),
                cz & (REGION_CHUNKS - 1),
                0,
                offset,
                len(comp),
                zlib.crc32(comp),
            )
        )
        blob.extend(comp)
        offset += len(comp)
    data = (
        _HEADER.pack(MAGIC, FORMAT_VERSION, 0, len(payloads))
        + b"".join(entries)
        + bytes(blob)
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_bytes(data)
    tmp.replace(path)
    return len(data)


def read_region(
    path: str | Path, rx: int, rz: int
) -> tuple[dict[tuple[int, int], bytes], list[CorruptEntry]]:
    """Read one region file's compressed payloads, recovering what it can.

    Returns ``(payloads, corrupt)``: payloads keyed by chunk coordinates
    for every entry whose bytes are intact (length in bounds, CRC
    matches), and a :class:`CorruptEntry` per damaged one — the behaviour
    the crash-safety tests pin: a truncated file loses only the chunks
    whose payloads the truncation ate.

    Raises :class:`RegionCorruptError` when the file is not a region file
    at all (bad magic/version) or its header/entry table is truncated.
    """
    data = Path(path).read_bytes()
    if len(data) < _HEADER.size:
        raise RegionCorruptError(f"{path}: truncated header")
    magic, version, _flags, count = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise RegionCorruptError(f"{path}: bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise RegionCorruptError(f"{path}: unsupported version {version}")
    table_end = _HEADER.size + _ENTRY.size * count
    if len(data) < table_end:
        raise RegionCorruptError(f"{path}: truncated entry table")
    payloads: dict[tuple[int, int], bytes] = {}
    corrupt: list[CorruptEntry] = []
    for i in range(count):
        lx, lz, _reserved, offset, length, crc = _ENTRY.unpack_from(
            data, _HEADER.size + _ENTRY.size * i
        )
        cx = (rx * REGION_CHUNKS) + lx
        cz = (rz * REGION_CHUNKS) + lz
        if offset + length > len(data):
            corrupt.append(CorruptEntry(cx, cz, "payload truncated"))
            continue
        comp = data[offset : offset + length]
        if zlib.crc32(comp) != crc:
            corrupt.append(CorruptEntry(cx, cz, "crc mismatch"))
            continue
        payloads[(cx, cz)] = comp
    return payloads, corrupt
