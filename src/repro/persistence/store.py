"""The on-disk chunk store: a directory of region files plus bookkeeping.

Layout, under the store's root (a *world directory*)::

    <root>/
      region/r.{rx}.{rz}.msr    one region file per touched 32×32 area
      world.json                optional manifest (written by ``prepare``)

The store is the only component that touches the filesystem; the
:class:`~repro.persistence.lifecycle.ChunkLifecycle` decides *when* chunks
move, the store decides *how*.  Parsed region payload tables are cached in
memory (compressed payloads only, a few KB per chunk), so the streaming
reload path costs one inflate per chunk rather than one file parse.

Corruption policy mirrors :func:`repro.persistence.region.read_region`:
a damaged region or entry is recorded on ``corrupt`` and treated as
absent — the world falls back to regeneration — never silently zeroed.
"""

from __future__ import annotations

import struct
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.mlg.world import Chunk, World
from repro.persistence.region import (
    REGION_CHUNKS,
    CorruptEntry,
    RegionCorruptError,
    chunk_to_region,
    compress_payload,
    deserialize_chunk,
    read_region,
    region_filename,
    serialize_chunk,
    write_region,
)

__all__ = ["RegionStore", "StoreScan", "world_hash"]

REGION_DIR = "region"


@dataclass
class StoreScan:
    """What a full walk of the store found (``repro world inspect``)."""

    regions: int = 0
    chunks: int = 0
    total_bytes: int = 0
    corrupt_entries: list[CorruptEntry] = field(default_factory=list)
    corrupt_regions: list[str] = field(default_factory=list)


class RegionStore:
    """Reads and writes one world directory's region files."""

    #: Parsed region tables kept in memory.  The cache is LRU-bounded so
    #: a long streaming run (thousands of frontier chunks) does not
    #: quietly retain every compressed payload it ever touched while the
    #: world itself dutifully plateaus under eviction.
    CACHE_REGIONS = 8

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.region_dir = self.root / REGION_DIR
        #: Cumulative compressed bytes moved, for the disk-IO metrics.
        self.bytes_read = 0
        self.bytes_written = 0
        #: Damaged entries/regions encountered while loading.
        self.corrupt: list[CorruptEntry] = []
        #: (rx, rz) -> {(cx, cz): compressed payload}; LRU, newest last.
        self._regions: OrderedDict[
            tuple[int, int], dict[tuple[int, int], bytes]
        ] = OrderedDict()

    # -- region access -------------------------------------------------------

    def region_path(self, rx: int, rz: int) -> Path:
        return self.region_dir / region_filename(rx, rz)

    def _region(self, rx: int, rz: int) -> dict[tuple[int, int], bytes]:
        """The region's payload table, reading it from disk on first use."""
        table = self._regions.get((rx, rz))
        if table is not None:
            self._regions.move_to_end((rx, rz))
            return table
        path = self.region_path(rx, rz)
        table = {}
        if path.exists():
            try:
                table, corrupt = read_region(path, rx, rz)
            except RegionCorruptError as exc:
                # The whole file is unusable: every chunk it held is gone.
                self.corrupt.append(
                    CorruptEntry(
                        rx * REGION_CHUNKS, rz * REGION_CHUNKS, str(exc)
                    )
                )
                table = {}
            else:
                self.corrupt.extend(corrupt)
        self._cache_put(rx, rz, table)
        return table

    def _cache_put(
        self, rx: int, rz: int, table: dict[tuple[int, int], bytes]
    ) -> None:
        self._regions[(rx, rz)] = table
        self._regions.move_to_end((rx, rz))
        while len(self._regions) > self.CACHE_REGIONS:
            self._regions.popitem(last=False)

    def _region_coords_on_disk(self) -> list[tuple[int, int]]:
        if not self.region_dir.is_dir():
            return []
        coords = []
        for path in sorted(self.region_dir.glob("r.*.msr")):
            parts = path.name.split(".")
            if len(parts) != 4:
                continue
            try:
                coords.append((int(parts[1]), int(parts[2])))
            except ValueError:
                continue
        return coords

    # -- chunk IO ------------------------------------------------------------

    def has_chunk(self, cx: int, cz: int) -> bool:
        return (cx, cz) in self._region(*chunk_to_region(cx, cz))

    def chunk_positions(self) -> set[tuple[int, int]]:
        """Every chunk recoverable from disk (parses all region headers)."""
        positions: set[tuple[int, int]] = set()
        for rx, rz in self._region_coords_on_disk():
            positions.update(self._region(rx, rz))
        return positions

    def load_chunk(self, cx: int, cz: int) -> Chunk | None:
        """Deserialize one chunk, or ``None`` when absent or damaged."""
        comp = self._region(*chunk_to_region(cx, cz)).get((cx, cz))
        if comp is None:
            return None
        try:
            raw = zlib.decompress(comp)
            chunk = deserialize_chunk(cx, cz, raw)
        except (zlib.error, ValueError) as exc:
            self.corrupt.append(CorruptEntry(cx, cz, f"payload: {exc}"))
            return None
        self.bytes_read += len(comp)
        return chunk

    def save_chunks(self, chunks: list[Chunk]) -> int:
        """Write chunks back to their regions; returns bytes written.

        Groups by region and does one atomic read-modify-write per
        touched region file, so a kill mid-save leaves every region
        either fully old or fully new.
        """
        by_region: dict[tuple[int, int], list[Chunk]] = {}
        for chunk in chunks:
            by_region.setdefault(chunk_to_region(chunk.cx, chunk.cz), []).append(
                chunk
            )
        written = 0
        for (rx, rz), group in sorted(by_region.items()):
            table = dict(self._region(rx, rz))
            for chunk in group:
                table[(chunk.cx, chunk.cz)] = compress_payload(
                    serialize_chunk(chunk)
                )
            written += write_region(self.region_path(rx, rz), rx, rz, table)
            self._cache_put(rx, rz, table)
        self.bytes_written += written
        return written

    # -- inspection ----------------------------------------------------------

    def scan(self) -> StoreScan:
        """Walk every region file, recovering counts and damage reports.

        Parsed payload tables land in the store's cache, so a following
        ``load_chunk``/``chunk_positions`` pass (e.g. hashing the world
        after an inspection) does not re-read the files.
        """
        report = StoreScan()
        for rx, rz in self._region_coords_on_disk():
            path = self.region_path(rx, rz)
            report.total_bytes += path.stat().st_size
            try:
                table, corrupt = read_region(path, rx, rz)
            except RegionCorruptError as exc:
                report.corrupt_regions.append(f"{path.name}: {exc}")
                self._cache_put(rx, rz, {})
                continue
            report.regions += 1
            report.chunks += len(table)
            report.corrupt_entries.extend(corrupt)
            self._cache_put(rx, rz, table)
        return report


def world_hash(world: World) -> int:
    """Order-independent CRC32 of the world's persisted state.

    Covers every loaded chunk's coordinates, blocks, aux, and heightmap —
    the exact arrays persistence round-trips — so a warm-booted world and
    a cold-generated one can be compared for bit-identity in O(world)
    without serializing to disk.
    """
    digest = 0
    for chunk in sorted(world.loaded_chunks(), key=lambda c: (c.cx, c.cz)):
        digest = zlib.crc32(struct.pack("<qq", chunk.cx, chunk.cz), digest)
        digest = zlib.crc32(chunk.blocks.tobytes(), digest)
        digest = zlib.crc32(chunk.aux.tobytes(), digest)
        digest = zlib.crc32(
            chunk.heightmap.astype("<i2", copy=False).tobytes(), digest
        )
    return digest & 0xFFFFFFFF
