"""World persistence: region-file chunk store and chunk lifecycle.

Layers (lowest first):

* :mod:`repro.persistence.region` — the on-disk region-file format
  (32×32 chunks, zlib payloads, CRC-checked entries, atomic writes).
* :mod:`repro.persistence.store` — :class:`RegionStore`, a directory of
  region files with payload caching and corruption recovery.
* :mod:`repro.persistence.lifecycle` — :class:`ChunkLifecycle`, the
  autosave scheduler and LRU chunk-streaming policy the game loop drives.
* :mod:`repro.persistence.warmup` — world pre-generation for campaign
  warm caches and the ``repro world`` CLI.  Imported explicitly (not
  re-exported here): it depends on the workload registry, which depends
  on the server, which depends on this package.
"""

from repro.persistence.lifecycle import ChunkLifecycle
from repro.persistence.region import (
    CorruptEntry,
    RegionCorruptError,
    deserialize_chunk,
    read_region,
    serialize_chunk,
    write_region,
)
from repro.persistence.store import RegionStore, StoreScan, world_hash

__all__ = [
    "ChunkLifecycle",
    "CorruptEntry",
    "RegionCorruptError",
    "RegionStore",
    "StoreScan",
    "deserialize_chunk",
    "read_region",
    "serialize_chunk",
    "world_hash",
    "write_region",
]
