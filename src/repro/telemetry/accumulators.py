"""Bounded-memory online accumulators for the streaming telemetry bus.

Every class here consumes one observation at a time in O(1) amortized
work and O(1) memory, and can serialize itself to a plain JSON-able dict
— the property the campaign executor relies on to stream per-iteration
telemetry into sidecar shards while a run is still in flight.

The building blocks:

``WelfordAccumulator``
    Exact streaming moments (count/mean/variance) via Welford's update,
    mergeable with Chan's parallel formula.  Merging is order-insensitive
    and agrees with single-stream accumulation to float rounding.
``P2Quantile``
    The classic P² estimator (Jain & Chlamtac 1985): one quantile from
    five markers, no samples stored.
``QuantileSketch``
    A mergeable streaming histogram (Ben-Haim & Tom-Toub style) in the
    same constant-memory family as P²; answers *any* quantile, so one
    sketch serves p25/p50/p75/p95/p99 at once.
``RingBuffer``
    Fixed-capacity recent-tail store for live timeseries views.
``MetricAccumulator``
    The composite the bus hands out per metric: naive sum (so means are
    bit-identical with ``sum(xs)/len(xs)``), Welford moments, min/max,
    threshold exceedance counts, a quantile sketch, and a tail buffer.
"""

from __future__ import annotations

import math
from bisect import bisect_right, insort

__all__ = [
    "MetricAccumulator",
    "P2Quantile",
    "QuantileSketch",
    "RingBuffer",
    "WelfordAccumulator",
]


class WelfordAccumulator:
    """Streaming count/mean/variance with exact pairwise merge."""

    __slots__ = ("count", "mean", "m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def merge(self, other: "WelfordAccumulator") -> None:
        """Fold ``other`` in (Chan et al.'s parallel variance formula)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * other.count / total
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.count = total

    @property
    def variance(self) -> float:
        """Population variance (ddof=0), 0.0 until two observations."""
        if self.count < 2:
            return 0.0
        return max(0.0, self.m2 / self.count)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def cov(self) -> float:
        """Coefficient of variation std/|mean| (0.0 for a ~zero mean)."""
        if self.count == 0 or abs(self.mean) < 1e-12:
            return 0.0
        return self.std / abs(self.mean)

    def to_dict(self) -> dict:
        return {"count": self.count, "mean": self.mean, "m2": self.m2}

    @classmethod
    def from_dict(cls, data: dict) -> "WelfordAccumulator":
        acc = cls()
        acc.count = int(data["count"])
        acc.mean = float(data["mean"])
        acc.m2 = float(data["m2"])
        return acc


class P2Quantile:
    """One streaming quantile via the P² algorithm — five markers, no data.

    Until five observations arrive the exact order statistic is returned;
    after that the markers move by piecewise-parabolic interpolation.
    """

    __slots__ = ("q", "_heights", "_positions", "_desired", "_increments")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q!r}")
        self.q = q
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    @property
    def count(self) -> int:
        if len(self._heights) < 5:
            return len(self._heights)
        return int(self._positions[4])

    def update(self, value: float) -> None:
        heights = self._heights
        if len(heights) < 5:
            insort(heights, value)
            return
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = bisect_right(heights, value) - 1
        positions = self._positions
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three interior markers.
        for i in (1, 2, 3):
            d = self._desired[i] - positions[i]
            if (d >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                d <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step)
            * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step)
            * (h[i] - h[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current estimate (exact until five observations)."""
        heights = self._heights
        if not heights:
            raise ValueError("no observations yet")
        if len(heights) < 5:
            rank = self.q * (len(heights) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(heights) - 1)
            return heights[lo] + (rank - lo) * (heights[hi] - heights[lo])
        return heights[2]


class QuantileSketch:
    """Mergeable constant-memory quantile sketch (streaming histogram).

    Maintains at most ``max_bins`` (value, count) centroids; inserting
    collapses the two closest centroids when the budget is exceeded.
    Quantiles are answered by linear interpolation over cumulative
    counts.  Merging concatenates centroid lists and re-compresses, so it
    is order-insensitive up to compression ties — accuracy is bounded by
    bin resolution, not by which stream a sample arrived on.
    """

    __slots__ = ("max_bins", "_bins", "_min", "_max", "_count")

    def __init__(self, max_bins: int = 64) -> None:
        if max_bins < 8:
            raise ValueError(f"max_bins must be >= 8, got {max_bins!r}")
        self.max_bins = max_bins
        self._bins: list[list[float]] = []  # sorted [value, count] pairs
        self._min = math.inf
        self._max = -math.inf
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    def update(self, value: float) -> None:
        self._count += 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        bins = self._bins
        lo, hi = 0, len(bins)
        while lo < hi:
            mid = (lo + hi) // 2
            if bins[mid][0] < value:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(bins) and bins[lo][0] == value:
            bins[lo][1] += 1.0
            return
        bins.insert(lo, [value, 1.0])
        if len(bins) > self.max_bins:
            self._compress_once()

    def _compress_once(self) -> None:
        """Collapse the closest adjacent centroid pair (count-weighted)."""
        bins = self._bins
        best = 0
        best_gap = math.inf
        for i in range(len(bins) - 1):
            gap = bins[i + 1][0] - bins[i][0]
            if gap < best_gap:
                best_gap = gap
                best = i
        v1, c1 = bins[best]
        v2, c2 = bins[best + 1]
        total = c1 + c2
        bins[best] = [(v1 * c1 + v2 * c2) / total, total]
        del bins[best + 1]

    def merge(self, other: "QuantileSketch") -> None:
        if other._count == 0:
            return
        self._count += other._count
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        merged = sorted(
            ([v, c] for v, c in self._bins + other._bins),
            key=lambda bin_: bin_[0],
        )
        self._bins = merged
        while len(self._bins) > self.max_bins:
            self._compress_once()

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile, ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self._count == 0:
            raise ValueError("no observations yet")
        if q <= 0.0:
            return self._min
        if q >= 1.0:
            return self._max
        bins = self._bins
        target = q * self._count
        # Cumulative count at each centroid, treating each centroid's mass
        # as centred on its value; clamp to the observed extremes.
        cum = 0.0
        prev_value, prev_cum = self._min, 0.0
        for value, count in bins:
            centre = cum + count / 2.0
            if centre >= target:
                if centre <= prev_cum:
                    return value
                frac = (target - prev_cum) / (centre - prev_cum)
                return prev_value + frac * (value - prev_value)
            prev_value, prev_cum = value, centre
            cum += count
        if self._count <= prev_cum:
            return self._max
        frac = (target - prev_cum) / (self._count - prev_cum)
        return prev_value + frac * (self._max - prev_value)

    def to_dict(self) -> dict:
        return {
            "max_bins": self.max_bins,
            "bins": [[v, c] for v, c in self._bins],
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "count": self._count,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuantileSketch":
        sketch = cls(max_bins=int(data["max_bins"]))
        sketch._bins = [[float(v), float(c)] for v, c in data["bins"]]
        sketch._count = int(data["count"])
        if sketch._count:
            sketch._min = float(data["min"])
            sketch._max = float(data["max"])
        return sketch


class RingBuffer:
    """Fixed-capacity tail of the most recent observations, in order."""

    __slots__ = ("capacity", "_data", "_next", "_full")

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self._data: list[float] = []
        self._next = 0
        self._full = False

    def __len__(self) -> int:
        return len(self._data)

    def append(self, value: float) -> None:
        if self._full:
            self._data[self._next] = value
            self._next = (self._next + 1) % self.capacity
        else:
            self._data.append(value)
            if len(self._data) == self.capacity:
                self._full = True

    def values(self) -> list[float]:
        """The retained tail, oldest first."""
        if not self._full:
            return list(self._data)
        return self._data[self._next :] + self._data[: self._next]


class MetricAccumulator:
    """Everything the telemetry bus keeps per metric, in O(1) memory.

    ``mean`` is computed from a plain running sum, so for any sequence of
    updates it is bit-identical to ``sum(values) / len(values)`` — the
    invariant that keeps ``retain_raw=True`` summaries byte-for-byte
    stable while the raw lists exist.  (Summaries that numpy computes
    from raw arrays use pairwise summation and may differ from the
    streaming value in the last ULP; the guarantee is against the naive
    sequential sum, which is what the collectors' summaries use.)

    ``thresholds`` maps a label to a cutoff; the snapshot reports the
    fraction of observations *strictly above* each cutoff (mirroring
    ``repro.metrics.stats.summarize``'s QoS exceedance fields).
    """

    #: Quantiles every snapshot reports.
    SNAPSHOT_QUANTILES = (0.25, 0.50, 0.75, 0.95, 0.99)

    __slots__ = (
        "name",
        "total",
        "minimum",
        "maximum",
        "welford",
        "sketch",
        "tail",
        "thresholds",
        "_over",
    )

    def __init__(
        self,
        name: str = "",
        thresholds: dict[str, float] | None = None,
        max_bins: int = 64,
        tail_size: int = 256,
    ) -> None:
        self.name = name
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.welford = WelfordAccumulator()
        self.sketch = QuantileSketch(max_bins=max_bins)
        self.tail = RingBuffer(tail_size) if tail_size else None
        self.thresholds = dict(thresholds or {})
        self._over = {label: 0 for label in self.thresholds}

    @property
    def count(self) -> int:
        return self.welford.count

    @property
    def mean(self) -> float:
        if self.welford.count == 0:
            return 0.0
        return self.total / self.welford.count

    def update(self, value: float) -> None:
        value = float(value)
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.welford.update(value)
        self.sketch.update(value)
        if self.tail is not None:
            self.tail.append(value)
        for label, cutoff in self.thresholds.items():
            if value > cutoff:
                self._over[label] += 1

    def merge(self, other: "MetricAccumulator") -> None:
        """Fold another shard of the same metric in.

        Moments, extremes, counts, and exceedance fractions merge
        exactly; quantiles merge at sketch resolution; the tail keeps
        ``other``'s most recent values (it is the *newer* shard by
        convention).
        """
        if other.count == 0:
            return
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        self.welford.merge(other.welford)
        self.sketch.merge(other.sketch)
        if self.tail is not None and other.tail is not None:
            for value in other.tail.values():
                self.tail.append(value)
        for label, count in other._over.items():
            if label in self._over:
                self._over[label] += count
            else:
                self._over[label] = count
                self.thresholds[label] = other.thresholds[label]

    def quantile(self, q: float) -> float:
        return self.sketch.quantile(q)

    def snapshot(self, include_tail: bool = True) -> dict:
        """JSON-able summary of everything this metric has seen."""
        count = self.count
        snap: dict = {
            "count": count,
            "mean": self.mean,
            "std": self.welford.std,
            "cov": self.welford.cov,
            "min": self.minimum if count else 0.0,
            "max": self.maximum if count else 0.0,
        }
        for q in self.SNAPSHOT_QUANTILES:
            key = f"p{int(q * 100)}"
            snap[key] = self.sketch.quantile(q) if count else 0.0
        for label in self.thresholds:
            snap[f"frac_over_{label}"] = (
                self._over[label] / count if count else 0.0
            )
        if include_tail and self.tail is not None:
            snap["tail"] = self.tail.values()
        return snap

    def to_dict(self) -> dict:
        """Full mergeable state (unlike :meth:`snapshot`, lossless)."""
        return {
            "name": self.name,
            "total": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "welford": self.welford.to_dict(),
            "sketch": self.sketch.to_dict(),
            "tail": self.tail.values() if self.tail is not None else None,
            "tail_size": self.tail.capacity if self.tail is not None else 0,
            "thresholds": dict(self.thresholds),
            "over": dict(self._over),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricAccumulator":
        acc = cls(
            name=data.get("name", ""),
            thresholds=data.get("thresholds") or {},
            max_bins=int(data["sketch"]["max_bins"]),
            tail_size=int(data.get("tail_size") or 0),
        )
        acc.total = float(data["total"])
        acc.welford = WelfordAccumulator.from_dict(data["welford"])
        acc.sketch = QuantileSketch.from_dict(data["sketch"])
        if acc.count:
            acc.minimum = float(data["min"])
            acc.maximum = float(data["max"])
        if acc.tail is not None and data.get("tail"):
            for value in data["tail"]:
                acc.tail.append(float(value))
        acc._over = {k: int(v) for k, v in (data.get("over") or {}).items()}
        for label in acc.thresholds:
            acc._over.setdefault(label, 0)
        return acc
