"""The server tick tap: per-tick telemetry folded as the loop runs.

One :class:`ServerTelemetry` instance rides on each MLG server.  The
game loop pushes every finished tick record through :meth:`observe_tick`
and the tap folds it into bounded-memory state:

- the ``tick_ms`` metric (moments, quantile sketch, budget exceedance,
  recent tail) on a :class:`~repro.telemetry.bus.TelemetryBus`;
- a windowed view of ``tick_ms`` (per-window CoV, warmup→steady-state);
- running Fig. 11 bucket totals, wait/wall totals, and overload counts —
  what :class:`~repro.core.collectors.MetricExternalizer` previously
  recomputed by re-walking ``tick_records`` on every call;
- a streaming Instability Ratio (Equation 1 needs only the previous
  period, the running jitter sum, and the running period sum).

The tap never stores tick records, so a server can run for as long as
the hardware allows with constant telemetry memory.  It is deliberately
duck-typed against the record (``duration_ms``/``duration_us``/
``wait_us``/``breakdown_us``/``overloaded``) so the telemetry package
does not depend on :mod:`repro.mlg`.

Metric → paper mapping (see also the README's Telemetry section):

======================  =============================================
Streamed metric         Paper figure / table
======================  =============================================
``tick_ms`` quantiles   Fig. 9 tick-time series (tail buffer) and the
                        Fig. 10/12 box plots (p25/p50/p75/p95)
``tick_ms`` CoV,        Fig. 8 / Table 6 variability columns
windowed CoV
``isr``                 Fig. 6/8, Table 6 (Equation 1)
``breakdown_us`` totals Fig. 11 tick-time distribution buckets
``frac_over_budget``    §2.1 overload fraction (>50 ms ticks, Fig. 9
                        annotations)
======================  =============================================
"""

from __future__ import annotations

from repro.metrics.stats import NOTICEABLE_MS, UNPLAYABLE_MS
from repro.telemetry.bus import TelemetryBus

__all__ = ["ServerTelemetry"]

#: Bus metric name for tick durations.
TICK_METRIC = "tick_ms"
#: Bus metric name for bot-observed chat-probe response times.
RESPONSE_METRIC = "response_ms"


class ServerTelemetry:
    """Streaming per-tick telemetry for one server (O(1) memory)."""

    def __init__(
        self,
        budget_us: int,
        window_size: int = 100,
        tail_size: int = 256,
    ) -> None:
        self.budget_us = budget_us
        self.budget_ms = budget_us / 1000.0
        self.bus = TelemetryBus(tail_size=tail_size)
        self.tick_ms = self.bus.metric(
            TICK_METRIC, thresholds={"budget": self.budget_ms}
        )
        self.windows = self.bus.watch(TICK_METRIC, window_size=window_size)
        #: Response times, published by the emulated players as each
        #: chat-probe echo arrives (thresholds: the §3.5.1 QoS cutoffs).
        self.response_ms = self.bus.metric(
            RESPONSE_METRIC,
            thresholds={
                "noticeable": NOTICEABLE_MS,
                "unplayable": UNPLAYABLE_MS,
            },
        )
        #: Running Fig. 11 totals: simulated µs per work bucket.
        self.bucket_totals_us: dict[str, float] = {}
        self.wait_after_us = 0.0
        self.wall_us = 0.0
        self.ticks = 0
        self.overloaded_ticks = 0
        #: Live-entity population at the last observed tick / its maximum —
        #: the entity-kernel scale the tick durations were measured at.
        self.entities_last = 0
        self.entities_peak = 0
        # Streaming ISR state (Equation 1, all in ms).
        self._prev_period_ms: float | None = None
        self._jitter_sum_ms = 0.0
        self._period_sum_ms = 0.0

    # -- the tap ------------------------------------------------------------

    def observe_tick(self, record) -> None:
        """Fold one finished tick record into the streaming state."""
        self.ticks += 1
        duration_ms = record.duration_ms
        self.bus.publish(TICK_METRIC, duration_ms)
        for bucket, us in record.breakdown_us.items():
            self.bucket_totals_us[bucket] = (
                self.bucket_totals_us.get(bucket, 0.0) + us
            )
        self.wait_after_us += record.wait_us
        self.wall_us += record.duration_us + record.wait_us
        if record.overloaded:
            self.overloaded_ticks += 1
        entities = getattr(record, "entities", None)
        if entities is not None:
            self.entities_last = entities
            if entities > self.entities_peak:
                self.entities_peak = entities
        period_ms = max(duration_ms, self.budget_ms)
        if self._prev_period_ms is not None:
            self._jitter_sum_ms += abs(period_ms - self._prev_period_ms)
        self._prev_period_ms = period_ms
        self._period_sum_ms += period_ms

    def observe_response(self, response_ms: float) -> None:
        """Fold one completed client probe (bot-side response time)."""
        self.bus.publish(RESPONSE_METRIC, response_ms)

    # -- derived metrics ----------------------------------------------------

    @property
    def overloaded_fraction(self) -> float:
        if self.ticks == 0:
            return 0.0
        return self.overloaded_ticks / self.ticks

    @property
    def isr(self) -> float:
        """Streaming Instability Ratio over everything observed so far."""
        if self.ticks < 2:
            return 0.0
        n_expected = int(round(self._period_sum_ms / self.budget_ms))
        if n_expected <= 0:
            return 0.0
        return self._jitter_sum_ms / (n_expected * 2.0 * self.budget_ms)

    def snapshot(self, include_tails: bool = True) -> dict:
        """JSON-able streaming summary of the whole run so far."""
        return {
            "ticks": self.ticks,
            "isr": self.isr,
            "overloaded_fraction": self.overloaded_fraction,
            "tick_ms": self.tick_ms.snapshot(include_tail=include_tails),
            "windows": self.windows.snapshot(),
            "breakdown_us": dict(sorted(self.bucket_totals_us.items())),
            "wait_after_us": self.wait_after_us,
            "wall_us": self.wall_us,
            "entities_last": self.entities_last,
            "entities_peak": self.entities_peak,
        }
