"""Streaming telemetry: bounded-memory online statistics for long runs.

The measurement loop used to materialize every tick record and system
sample into unbounded lists and re-walk them for each summary; this
package replaces that with push-based, mergeable accumulators so runs
can last as long as the hardware allows and campaigns are observable
*while* they run (``python -m repro status`` reads the JSONL telemetry
sidecars the executor streams per iteration).

Layers (bottom up):

- :mod:`repro.telemetry.accumulators` — Welford moments, P² quantile,
  mergeable quantile sketch, ring-buffer tails, and the per-metric
  composite :class:`MetricAccumulator`.
- :mod:`repro.telemetry.windowed` — :class:`WindowedSeries`: per-window
  CoV and the warmup→steady-state change point.
- :mod:`repro.telemetry.bus` — :class:`TelemetryBus`: named metric
  streams plus synchronous pub/sub.
- :mod:`repro.telemetry.tap` — :class:`ServerTelemetry`: the per-server
  tick tap (streaming ISR, Fig. 11 bucket totals, overload fraction);
  its docstring carries the metric → paper figure/table map.
"""

from repro.telemetry.accumulators import (
    MetricAccumulator,
    P2Quantile,
    QuantileSketch,
    RingBuffer,
    WelfordAccumulator,
)
from repro.telemetry.bus import TelemetryBus
from repro.telemetry.tap import ServerTelemetry
from repro.telemetry.windowed import WindowedSeries, WindowSummary

__all__ = [
    "MetricAccumulator",
    "P2Quantile",
    "QuantileSketch",
    "RingBuffer",
    "ServerTelemetry",
    "TelemetryBus",
    "WelfordAccumulator",
    "WindowSummary",
    "WindowedSeries",
]
