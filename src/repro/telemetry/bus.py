"""The push-based metric bus: named streams of bounded-memory telemetry.

Producers ``publish(name, value)``; the bus routes each observation into
that metric's :class:`~repro.telemetry.accumulators.MetricAccumulator`,
into an optional :class:`~repro.telemetry.windowed.WindowedSeries`
(attached with :meth:`TelemetryBus.watch`), and to any subscribers.
Everything is synchronous and deterministic — the bus adds no threads
and no wall-clock reads, so runs stay bit-identical however telemetry is
consumed.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.telemetry.accumulators import MetricAccumulator
from repro.telemetry.windowed import WindowedSeries

__all__ = ["TelemetryBus"]

#: Subscriber signature: (metric_name, value) -> None.
Subscriber = Callable[[str, float], None]


class TelemetryBus:
    """Registry of streaming metrics plus a synchronous pub/sub fan-out."""

    def __init__(self, tail_size: int = 256, max_bins: int = 64) -> None:
        self.tail_size = tail_size
        self.max_bins = max_bins
        self._metrics: dict[str, MetricAccumulator] = {}
        self._windows: dict[str, WindowedSeries] = {}
        self._counters: dict[str, float] = {}
        self._subscribers: list[tuple[str | None, Subscriber]] = []

    # -- registration -------------------------------------------------------

    def metric(
        self, name: str, thresholds: dict[str, float] | None = None
    ) -> MetricAccumulator:
        """Get or lazily create the accumulator for ``name``.

        ``thresholds`` only applies on first creation; asking again with
        different thresholds is a configuration error.
        """
        acc = self._metrics.get(name)
        if acc is None:
            acc = MetricAccumulator(
                name=name,
                thresholds=thresholds,
                max_bins=self.max_bins,
                tail_size=self.tail_size,
            )
            self._metrics[name] = acc
        elif thresholds and thresholds != acc.thresholds:
            raise ValueError(
                f"metric {name!r} already registered with thresholds "
                f"{acc.thresholds!r}"
            )
        return acc

    def watch(self, name: str, **window_kwargs) -> WindowedSeries:
        """Attach (or fetch) a windowed view of metric ``name``."""
        series = self._windows.get(name)
        if series is None:
            series = WindowedSeries(**window_kwargs)
            self._windows[name] = series
            self.metric(name)
        return series

    def subscribe(self, fn: Subscriber, name: str | None = None) -> None:
        """Call ``fn(name, value)`` on every publish (or only ``name``'s)."""
        self._subscribers.append((name, fn))

    # -- publishing ---------------------------------------------------------

    def publish(self, name: str, value: float) -> None:
        self.metric(name).update(value)
        series = self._windows.get(name)
        if series is not None:
            series.update(value)
        for only, fn in self._subscribers:
            if only is None or only == name:
                fn(name, value)

    def count(self, name: str, amount: float = 1.0) -> None:
        """Bump a plain counter (no distribution tracking)."""
        self._counters[name] = self._counters.get(name, 0.0) + amount

    # -- reading ------------------------------------------------------------

    @property
    def metric_names(self) -> list[str]:
        return sorted(self._metrics)

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def window(self, name: str) -> WindowedSeries | None:
        return self._windows.get(name)

    def snapshot(self, include_tails: bool = False) -> dict:
        """One JSON-able dict of every metric, window, and counter."""
        return {
            "metrics": {
                name: acc.snapshot(include_tail=include_tails)
                for name, acc in sorted(self._metrics.items())
            },
            "windows": {
                name: series.snapshot()
                for name, series in sorted(self._windows.items())
            },
            "counters": dict(sorted(self._counters.items())),
        }
