"""Windowed variability: per-window CoV and the warmup→steady boundary.

Variability conclusions depend on *where* in a run you look: the first
windows of a Meterstick iteration are dominated by chunk loading and bot
connects, and pooling them with steady state inflates every dispersion
metric (compare Fig. 9's connect-time spike against its flat tail).
:class:`WindowedSeries` slices a stream into fixed-size windows, keeps
each window's mean/std/CoV, and applies a simple online change-point
rule to find the first window where the level stops drifting — the
warmup→steady-state boundary.

The rule (a streaming rendition of the relative-drift heuristics used by
benchmark-length studies): a window is *calm* when its mean moved less
than ``rel_tol`` (relative) from the previous window's mean; the series
is declared steady at the first window that starts ``stable_windows``
consecutive calm windows, and the boundary is sticky once found.  Memory
is O(recent_windows) regardless of stream length.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.accumulators import WelfordAccumulator

__all__ = ["WindowSummary", "WindowedSeries"]


@dataclass(frozen=True)
class WindowSummary:
    """Dispersion summary of one completed window."""

    index: int
    start: int
    count: int
    mean: float
    std: float
    cov: float
    minimum: float
    maximum: float

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "start": self.start,
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "cov": self.cov,
            "min": self.minimum,
            "max": self.maximum,
        }


class WindowedSeries:
    """Fixed-size windows over a stream, with online steady-state detection."""

    def __init__(
        self,
        window_size: int = 100,
        rel_tol: float = 0.10,
        stable_windows: int = 3,
        recent_windows: int = 64,
    ) -> None:
        if window_size < 2:
            raise ValueError(f"window_size must be >= 2, got {window_size!r}")
        if rel_tol <= 0:
            raise ValueError(f"rel_tol must be positive, got {rel_tol!r}")
        if stable_windows < 1:
            raise ValueError(
                f"stable_windows must be >= 1, got {stable_windows!r}"
            )
        self.window_size = window_size
        self.rel_tol = rel_tol
        self.stable_windows = stable_windows
        self.recent_windows = recent_windows
        self.n_samples = 0
        self.n_windows = 0
        #: Most recent completed windows, oldest first (bounded).
        self.recent: list[WindowSummary] = []
        self._current = WelfordAccumulator()
        self._current_min = float("inf")
        self._current_max = float("-inf")
        self._prev_mean: float | None = None
        self._calm_run = 0
        #: Window index where steady state began (sticky), or None.
        self.steady_since_window: int | None = None

    # -- streaming ----------------------------------------------------------

    def update(self, value: float) -> None:
        value = float(value)
        self.n_samples += 1
        self._current.update(value)
        self._current_min = min(self._current_min, value)
        self._current_max = max(self._current_max, value)
        if self._current.count >= self.window_size:
            self._close_window()

    def _close_window(self) -> None:
        acc = self._current
        summary = WindowSummary(
            index=self.n_windows,
            start=self.n_samples - acc.count,
            count=acc.count,
            mean=acc.mean,
            std=acc.std,
            cov=acc.cov,
            minimum=self._current_min,
            maximum=self._current_max,
        )
        self.recent.append(summary)
        if len(self.recent) > self.recent_windows:
            del self.recent[0]
        self.n_windows += 1
        self._detect(summary)
        self._current = WelfordAccumulator()
        self._current_min = float("inf")
        self._current_max = float("-inf")

    def _detect(self, window: WindowSummary) -> None:
        prev = self._prev_mean
        self._prev_mean = window.mean
        if prev is None:
            return
        scale = max(abs(prev), 1e-12)
        calm = abs(window.mean - prev) <= self.rel_tol * scale
        if calm:
            self._calm_run += 1
        else:
            self._calm_run = 0
        if (
            self.steady_since_window is None
            and self._calm_run >= self.stable_windows
        ):
            # The run began stable_windows windows ago; its first calm
            # window is where steady state starts.
            self.steady_since_window = window.index - self._calm_run + 1

    # -- state --------------------------------------------------------------

    @property
    def steady(self) -> bool:
        return self.steady_since_window is not None

    @property
    def warmup_samples(self) -> int | None:
        """Samples before steady state (None until it is detected)."""
        if self.steady_since_window is None:
            return None
        return self.steady_since_window * self.window_size

    def window_covs(self) -> list[float]:
        """CoV of each retained window, oldest first."""
        return [w.cov for w in self.recent]

    def snapshot(self) -> dict:
        """JSON-able state for sidecar shards and live status views."""
        last = self.recent[-1] if self.recent else None
        return {
            "window_size": self.window_size,
            "n_samples": self.n_samples,
            "n_windows": self.n_windows,
            "steady": self.steady,
            "steady_since_window": self.steady_since_window,
            "warmup_samples": self.warmup_samples,
            "last_window": last.to_dict() if last else None,
            "recent_covs": [round(c, 6) for c in self.window_covs()],
        }
