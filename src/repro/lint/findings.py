"""Lint findings: the one value type every checker produces.

A finding pins a rule violation to ``path:line:col`` with a severity and
a human message.  Output is byte-deterministic by construction: findings
are stable-sorted, renders carry no timestamps, and the JSON schema is
round-trippable (:func:`render_json` / :func:`findings_from_json`), so
the reporting layer can later embed lint status in HTML reports.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

__all__ = [
    "SEVERITIES",
    "Finding",
    "findings_from_json",
    "render_json",
    "render_text",
    "sort_findings",
]

#: JSON output schema identifier (bump on incompatible changes).
JSON_SCHEMA = "repro-lint-findings/v1"

#: Recognized severities, most severe first.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}: {self.severity!r}"
            )

    def sort_key(self) -> tuple[str, int, int, str, str]:
        return (self.path, self.line, self.col, self.rule, self.message)

    def suppression_key(self) -> tuple[str, str, str]:
        """Identity used by the committed baseline.

        Deliberately line/col-free: unrelated edits above a baselined
        finding must not resurrect it.
        """
        return (self.rule, self.path, self.message)

    def to_text(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule} "
            f"[{self.severity}] {self.message}"
        )


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Stable-sort findings into the canonical output order."""
    return sorted(findings, key=Finding.sort_key)


def render_text(findings: list[Finding]) -> str:
    """The ``--format text`` render: one line per finding + a summary."""
    lines = [finding.to_text() for finding in sort_findings(findings)]
    n_errors = sum(1 for f in findings if f.severity == "error")
    n_warnings = len(findings) - n_errors
    lines.append(
        f"{len(findings)} finding(s): {n_errors} error(s), "
        f"{n_warnings} warning(s)"
    )
    return "\n".join(lines) + "\n"


def render_json(findings: list[Finding]) -> str:
    """The ``--format json`` render (schema documented in the README)."""
    document = {
        "schema": JSON_SCHEMA,
        "count": len(findings),
        "errors": sum(1 for f in findings if f.severity == "error"),
        "warnings": sum(1 for f in findings if f.severity == "warning"),
        "findings": [asdict(f) for f in sort_findings(findings)],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def findings_from_json(text: str) -> list[Finding]:
    """Parse a :func:`render_json` document back into findings."""
    document = json.loads(text)
    schema = document.get("schema")
    if schema != JSON_SCHEMA:
        raise ValueError(
            f"unsupported lint findings schema {schema!r}; "
            f"expected {JSON_SCHEMA!r}"
        )
    return [Finding(**raw) for raw in document["findings"]]
