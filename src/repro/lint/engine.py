"""The lint engine: one AST walk per file, checkers subscribe by node type.

Flow: collect files → parse → per-file visit pass (every checker sees
the nodes it subscribed to, in one walk) → project ``finalize`` pass
over the parsed registries → pragma suppression → pragma-hygiene
findings → stable sort.  Output is byte-deterministic: no timestamps,
no absolute paths, no dict-order dependence.
"""

from __future__ import annotations

import ast
from pathlib import Path, PurePosixPath

from repro.lint.findings import Finding, sort_findings
from repro.lint.pragmas import PRAGMA_RULE, Pragma, scan_pragmas
from repro.lint.rules import ALL_CHECKERS, ORDER_SAFE_SINKS, Checker
from repro.lint.symbols import ProjectSymbols, _module_constants

__all__ = ["FileContext", "LintEngine", "ProjectContext", "lint_paths"]


class ProjectContext:
    """Run-wide state shared by every checker's ``finalize``."""

    def __init__(self, symbols: ProjectSymbols, full_scan: bool) -> None:
        self.symbols = symbols
        #: True when the scan covers the whole ``src/repro`` tree —
        #: "never used anywhere" registry checks only make sense then.
        self.full_scan = full_scan
        self.findings: list[Finding] = []

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)


class FileContext:
    """Per-file state handed to checkers during the walk."""

    def __init__(
        self, rel_path: str, tree: ast.Module, project: ProjectContext
    ) -> None:
        self.rel_path = rel_path
        self.tree = tree
        self.project = project
        self.findings: list[Finding] = []
        #: local alias -> fully dotted module/name it binds.
        self.imports: dict[str, str] = {}
        #: module-level literal constants (for resolving metric names).
        self.constants = _module_constants(tree)
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self._collect_imports()

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    # -- imports & name resolution -----------------------------------------

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.imports[alias.asname] = alias.name
                    else:
                        # `import os.path` binds `os`.
                        head = alias.name.split(".", 1)[0]
                        self.imports[head] = head
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:
                    continue  # relative imports stay unresolved
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self.imports[bound] = f"{node.module}.{alias.name}"

    def dotted_name(self, node: ast.expr) -> str | None:
        """``np.random.random`` -> ``"numpy.random.random"``.

        Resolves the base name through this file's import aliases;
        returns None when the base is not an imported module/name (an
        attribute chain rooted at a local object).
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        resolved = self.imports.get(current.id)
        if resolved is None:
            return None
        parts.append(resolved)
        return ".".join(reversed(parts))

    def resolve_str(self, node: ast.expr) -> str | None:
        """A string literal, or a module-level string constant by name."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            value = self.constants.get(node.id)
            if isinstance(value, str):
                return value
        return None

    # -- structural helpers -------------------------------------------------

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self.parents.get(current)
        return None

    @staticmethod
    def function_params(
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> set[str]:
        args = func.args
        return {
            arg.arg
            for arg in (
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *((args.vararg,) if args.vararg else ()),
                *((args.kwarg,) if args.kwarg else ()),
            )
        }

    def order_is_safe(self, node: ast.AST) -> bool:
        """Does ``node``'s (unordered) result feed an order-insensitive
        sink — ``sorted``/``set``/reducers, a set comprehension, or a
        membership test?  Climbs through generator/list comprehensions
        so ``sorted(x for x in d.glob(...))`` counts as safe."""
        current = node
        for _ in range(6):
            parent = self.parents.get(current)
            if parent is None:
                return False
            if isinstance(parent, ast.Call):
                func = parent.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in ORDER_SAFE_SINKS
                    and current in parent.args
                ):
                    return True
                return False
            if isinstance(parent, ast.SetComp):
                return True
            if isinstance(parent, ast.Compare):
                return any(
                    current is comparator and isinstance(op, (ast.In, ast.NotIn))
                    for op, comparator in zip(parent.ops, parent.comparators)
                )
            if isinstance(
                parent, (ast.comprehension, ast.GeneratorExp, ast.ListComp)
            ):
                current = parent
                continue
            return False
        return False


class LintEngine:
    """Run the checker suite over a set of paths."""

    def __init__(self, root: Path, checkers=ALL_CHECKERS) -> None:
        self.root = root.resolve()
        self.checker_classes = checkers

    # -- file collection ----------------------------------------------------

    def collect_files(self, paths: list[Path]) -> list[Path]:
        files: set[Path] = set()
        for path in paths:
            path = path if path.is_absolute() else self.root / path
            if path.is_dir():
                files.update(
                    p
                    for p in path.rglob("*.py")
                    if "__pycache__" not in p.parts
                )
            elif path.is_file():
                files.add(path)
            else:
                raise FileNotFoundError(f"no such file or directory: {path}")
        return sorted(files)

    def rel_path(self, path: Path) -> str:
        try:
            relative = path.resolve().relative_to(self.root)
        except ValueError:
            relative = path
        return str(PurePosixPath(relative))

    def is_full_scan(self, paths: list[Path]) -> bool:
        covered = {
            (p if p.is_absolute() else self.root / p).resolve()
            for p in paths
        }
        for candidate in (
            self.root,
            self.root / "src",
            self.root / "src" / "repro",
        ):
            if candidate in covered:
                return True
        return False

    # -- the run ------------------------------------------------------------

    def run(self, paths: list[Path]) -> list[Finding]:
        files = self.collect_files(paths)
        symbols = ProjectSymbols.load(self.root)
        project = ProjectContext(symbols, full_scan=self.is_full_scan(paths))
        checkers: list[Checker] = [cls() for cls in self.checker_classes]
        dispatch: dict[type, list[Checker]] = {}
        for checker in checkers:
            for node_type in checker.interests:
                dispatch.setdefault(node_type, []).append(checker)

        per_file: list[tuple[str, list[Finding], dict[int, Pragma]]] = []
        for path in files:
            rel = self.rel_path(path)
            source = path.read_text()
            pragmas = scan_pragmas(source)
            try:
                tree = ast.parse(source, filename=rel)
            except SyntaxError as exc:
                per_file.append(
                    (
                        rel,
                        [
                            Finding(
                                rule=PRAGMA_RULE,
                                severity="error",
                                path=rel,
                                line=exc.lineno or 1,
                                col=(exc.offset or 0) + 1,
                                message=f"syntax error: {exc.msg}",
                            )
                        ],
                        pragmas,
                    )
                )
                continue
            ctx = FileContext(rel, tree, project)
            applicable = {
                id(checker): checker.applies_to(rel) for checker in checkers
            }
            for node in ast.walk(tree):
                for checker in dispatch.get(type(node), ()):
                    if applicable[id(checker)]:
                        checker.visit(node, ctx)
            per_file.append((rel, ctx.findings, pragmas))

        for checker in checkers:
            checker.finalize(project)

        return self._apply_pragmas(per_file, project.findings)

    def _apply_pragmas(
        self,
        per_file: list[tuple[str, list[Finding], dict[int, Pragma]]],
        project_findings: list[Finding],
    ) -> list[Finding]:
        """Suppress pragma'd findings, then report pragma hygiene."""
        pragmas_by_path = {rel: pragmas for rel, _, pragmas in per_file}
        candidates = [f for _, found, _ in per_file for f in found]
        candidates.extend(project_findings)
        kept: list[Finding] = []
        for finding in candidates:
            pragma = pragmas_by_path.get(finding.path, {}).get(finding.line)
            if pragma is not None and pragma.allows(finding.rule):
                pragma.used.add(finding.rule)
                continue
            kept.append(finding)
        for rel, _, pragmas in per_file:
            for line in sorted(pragmas):
                pragma = pragmas[line]
                if not pragma.justification:
                    kept.append(
                        Finding(
                            rule=PRAGMA_RULE,
                            severity="warning",
                            path=rel,
                            line=pragma.line,
                            col=pragma.col,
                            message=(
                                "pragma without a justification — say *why* "
                                "this line is allowed to break "
                                f"{', '.join(pragma.rules)}"
                            ),
                        )
                    )
                unused = [r for r in pragma.rules if r not in pragma.used]
                if unused:
                    kept.append(
                        Finding(
                            rule=PRAGMA_RULE,
                            severity="warning",
                            path=rel,
                            line=pragma.line,
                            col=pragma.col,
                            message=(
                                f"unused pragma: {', '.join(unused)} never "
                                "fired on this line — remove the allowance"
                            ),
                        )
                    )
        return sort_findings(kept)


def lint_paths(
    paths: list[str | Path], root: str | Path | None = None
) -> list[Finding]:
    """Convenience wrapper: lint ``paths`` under ``root`` (default cwd)."""
    root_path = Path(root) if root is not None else Path.cwd()
    engine = LintEngine(root_path)
    return engine.run([Path(p) for p in paths])
