"""The committed lint baseline: grandfathered findings, nothing new.

``lint-baseline.json`` at the project root records findings that existed
when a rule landed and are accepted for now.  ``repro lint --baseline``
subtracts them, so CI fails only on *new* findings; ``repro lint
--update-baseline`` rewrites the file from the current run (the same
recipe as the perf baseline: regenerate deliberately, commit the diff).

Suppression keys are ``(rule, path, message)`` — line-free, so edits
above a baselined finding don't resurrect it, and a message change
(which means the violation itself changed) does.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Finding, sort_findings

__all__ = ["BASELINE_FILENAME", "Baseline"]

BASELINE_FILENAME = "lint-baseline.json"

_VERSION = 1


@dataclass
class Baseline:
    """A set of accepted findings, loaded from / saved to JSON."""

    suppressions: set[tuple[str, str, str]] = field(default_factory=set)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load a baseline; a missing file is an empty baseline."""
        if not path.is_file():
            return cls()
        data = json.loads(path.read_text())
        version = data.get("version")
        if version != _VERSION:
            raise ValueError(
                f"unsupported lint baseline version {version!r} in {path}"
            )
        return cls(
            suppressions={
                (entry["rule"], entry["path"], entry["message"])
                for entry in data.get("suppressions", ())
            }
        )

    def filter(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], int]:
        """(kept findings, suppressed count)."""
        kept = [
            finding
            for finding in findings
            if finding.suppression_key() not in self.suppressions
        ]
        return kept, len(findings) - len(kept)

    @staticmethod
    def write(path: Path, findings: list[Finding]) -> int:
        """Record ``findings`` as the new baseline; returns the count."""
        entries = sorted(
            {finding.suppression_key() for finding in sort_findings(findings)}
        )
        document = {
            "version": _VERSION,
            "suppressions": [
                {"rule": rule, "path": rel_path, "message": message}
                for rule, rel_path, message in entries
            ],
        }
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        return len(entries)
