"""Cross-file symbol tables for the project-level lint rules.

The cross-file rules (MSL002 op accounting, MSL003 knob threading,
MSL004 provenance hygiene, MSL005 telemetry registration) check
*registries* against *usage*: the ``Op`` constants against the cost
table and bucket map, the knob surface of ``MLGServer`` /
``MeterstickConfig`` / ``CampaignSpec``, the provenance field lists, and
the sidecar metric registry.  This module parses those registries out of
their defining files — pure ``ast``, nothing is imported or executed, so
the linter works on any tree that merely *looks* like the project
(which is also how the corpus tests exercise it).

Every extracted symbol carries the ``path:line`` it was defined at, so
project-level findings anchor to the registry entry at fault.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["UNRESOLVED", "Knob", "ProjectSymbols", "SourceRef"]


class _Unresolved:
    """Sentinel: a default value the parser could not reduce to a literal
    (``default_factory``, computed expressions).  Never equal to anything,
    so consistency checks silently skip it."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unresolved>"


UNRESOLVED = _Unresolved()


@dataclass(frozen=True)
class SourceRef:
    """Where a symbol was defined."""

    path: str
    line: int


@dataclass(frozen=True)
class Knob:
    """One configuration knob on one layer: its default and location."""

    name: str
    default: object
    ref: SourceRef

    @property
    def has_default(self) -> bool:
        return self.default is not UNRESOLVED


#: Relative paths (under the project root) of the registry files.
WORKREPORT_PATH = "src/repro/mlg/workreport.py"
VARIANTS_PATH = "src/repro/mlg/variants.py"
SERVER_PATH = "src/repro/mlg/server.py"
CONFIG_PATH = "src/repro/core/config.py"
SPEC_PATH = "src/repro/campaign/spec.py"
PROVENANCE_PATH = "src/repro/tracing/provenance.py"
REPORTING_SPEC_PATH = "src/repro/reporting/spec.py"
OBS_REGISTRY_PATH = "src/repro/obs/registry.py"


def _literal(node: ast.expr, constants: dict[str, object]) -> object:
    """Reduce ``node`` to a literal, resolving module-level constant
    names; :data:`UNRESOLVED` when it isn't statically reducible."""
    if isinstance(node, ast.Name):
        return constants.get(node.id, UNRESOLVED)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _literal(node.operand, constants)
        if isinstance(inner, (int, float)):
            return -inner
        return UNRESOLVED
    try:
        return ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return UNRESOLVED


def _module_constants(tree: ast.Module) -> dict[str, object]:
    """Module-level ``NAME = <literal>`` assignments."""
    constants: dict[str, object] = {}
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                resolved = _literal(value, constants)
                if resolved is not UNRESOLVED:
                    constants[target.id] = resolved
    return constants


def _op_attr_name(node: ast.expr) -> str | None:
    """``Op.FOO`` -> ``"FOO"`` (None for anything else)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "Op"
    ):
        return node.attr
    return None


def _find_class(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef) and stmt.name == name:
            return stmt
    return None


def _find_assign(tree: ast.Module, name: str) -> ast.Assign | None:
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return stmt
        elif (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == name
            and stmt.value is not None
        ):
            # Normalize to the Assign shape the callers expect.
            assign = ast.Assign(targets=[stmt.target], value=stmt.value)
            ast.copy_location(assign, stmt)
            return assign
    return None


def _str_sequence(node: ast.expr) -> list[str]:
    """String elements of a tuple/list/set/frozenset(...) display."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("frozenset", "tuple", "set", "list")
        and node.args
    ):
        node = node.args[0]
    if not isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return []
    return [
        element.value
        for element in node.elts
        if isinstance(element, ast.Constant) and isinstance(element.value, str)
    ]


def _dataclass_fields(
    cls: ast.ClassDef, constants: dict[str, object], path: str
) -> dict[str, Knob]:
    """Annotated fields of a dataclass body, with resolved defaults."""
    fields: dict[str, Knob] = {}
    for stmt in cls.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        name = stmt.target.id
        default: object = UNRESOLVED
        value = stmt.value
        if value is not None:
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "field"
            ):
                for keyword in value.keywords:
                    if keyword.arg == "default":
                        default = _literal(keyword.value, constants)
            else:
                default = _literal(value, constants)
        fields[name] = Knob(
            name=name,
            default=default,
            ref=SourceRef(path=path, line=stmt.lineno),
        )
    return fields


def _init_params(
    cls: ast.ClassDef, constants: dict[str, object], path: str
) -> dict[str, Knob]:
    """Keyword(-able) parameters of ``cls.__init__`` with defaults."""
    init = next(
        (
            stmt
            for stmt in cls.body
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
        ),
        None,
    )
    if init is None:
        return {}
    params: dict[str, Knob] = {}
    args = init.args
    positional = args.posonlyargs + args.args
    defaults: list[ast.expr | None] = [None] * (
        len(positional) - len(args.defaults)
    ) + list(args.defaults)
    for arg, default_node in zip(positional, defaults):
        if arg.arg == "self":
            continue
        default = (
            UNRESOLVED
            if default_node is None
            else _literal(default_node, constants)
        )
        params[arg.arg] = Knob(
            name=arg.arg,
            default=default,
            ref=SourceRef(path=path, line=arg.lineno),
        )
    for arg, default_node in zip(args.kwonlyargs, args.kw_defaults):
        default = (
            UNRESOLVED
            if default_node is None
            else _literal(default_node, constants)
        )
        params[arg.arg] = Knob(
            name=arg.arg,
            default=default,
            ref=SourceRef(path=path, line=arg.lineno),
        )
    return params


@dataclass
class ProjectSymbols:
    """Everything the cross-file rules need, parsed once per run."""

    root: Path

    # -- Op accounting (workreport.py + variants.py) ----------------------
    #: Op constant name -> its string value.
    ops: dict[str, str] = field(default_factory=dict)
    #: Op constant name -> definition site.
    op_refs: dict[str, SourceRef] = field(default_factory=dict)
    #: Names listed in ``Op.ALL``.
    op_all: list[str] = field(default_factory=list)
    ref_op_all: SourceRef | None = None
    #: Op names with an explicit ``_BUCKET_BY_OP`` entry -> bucket label.
    bucket_by_op: dict[str, str] = field(default_factory=dict)
    ref_bucket_by_op: SourceRef | None = None
    #: The legal Figure 11 bucket labels.
    figure_buckets: list[str] = field(default_factory=list)
    #: Op names priced in the variants base cost table.
    cost_ops: dict[str, SourceRef] = field(default_factory=dict)
    ref_cost_table: SourceRef | None = None

    # -- knob threading (server.py + config.py + spec.py) -----------------
    server_knobs: dict[str, Knob] = field(default_factory=dict)
    config_knobs: dict[str, Knob] = field(default_factory=dict)
    spec_knobs: dict[str, Knob] = field(default_factory=dict)
    #: ``_OVERRIDABLE_FIELDS`` entries (spec.py) -> definition site.
    overridable_fields: dict[str, SourceRef] = field(default_factory=dict)

    # -- provenance hygiene (provenance.py) -------------------------------
    non_measurement_fields: dict[str, SourceRef] = field(default_factory=dict)
    measurement_fields: dict[str, SourceRef] = field(default_factory=dict)
    has_provenance_registry: bool = False

    # -- telemetry registration (reporting/spec.py) -----------------------
    #: Bus metric name -> report fields derived from it.
    sidecar_metrics: dict[str, list[str]] = field(default_factory=dict)
    ref_sidecar_metrics: SourceRef | None = None
    metric_fields: dict[str, SourceRef] = field(default_factory=dict)

    # -- obs registration (obs/registry.py) --------------------------------
    #: Exported obs metric name -> its declared source stream/section.
    obs_metrics: dict[str, str] = field(default_factory=dict)
    #: Exported obs metric name -> registry entry location.
    obs_metric_refs: dict[str, SourceRef] = field(default_factory=dict)
    ref_obs_metrics: SourceRef | None = None

    @classmethod
    def load(cls, root: Path) -> "ProjectSymbols":
        symbols = cls(root=root)
        symbols._load_workreport()
        symbols._load_variants()
        symbols._load_knob_layer(SERVER_PATH, "MLGServer", "server_knobs")
        symbols._load_knob_layer(CONFIG_PATH, "MeterstickConfig", "config_knobs")
        symbols._load_knob_layer(SPEC_PATH, "CampaignSpec", "spec_knobs")
        symbols._load_overridable_fields()
        symbols._load_provenance()
        symbols._load_reporting_spec()
        symbols._load_obs_registry()
        return symbols

    # -- parsing helpers ----------------------------------------------------

    def _parse(self, rel_path: str) -> ast.Module | None:
        path = self.root / rel_path
        if not path.is_file():
            return None
        try:
            return ast.parse(path.read_text(), filename=str(path))
        except SyntaxError:
            # The per-file pass reports the syntax error; symbol-dependent
            # rules just see an absent registry.
            return None

    def _load_workreport(self) -> None:
        tree = self._parse(WORKREPORT_PATH)
        if tree is None:
            return
        op_class = _find_class(tree, "Op")
        if op_class is not None:
            for stmt in op_class.body:
                if isinstance(stmt, ast.Assign) and isinstance(
                    stmt.value, ast.Constant
                ):
                    value = stmt.value.value
                    if not isinstance(value, str):
                        continue
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            self.ops[target.id] = value
                            self.op_refs[target.id] = SourceRef(
                                WORKREPORT_PATH, stmt.lineno
                            )
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id == "ALL"
                            and isinstance(stmt.value, ast.Tuple)
                        ):
                            self.ref_op_all = SourceRef(
                                WORKREPORT_PATH, stmt.lineno
                            )
                            self.op_all = [
                                element.id
                                for element in stmt.value.elts
                                if isinstance(element, ast.Name)
                            ]
        buckets = _find_assign(tree, "FIGURE11_BUCKETS")
        if buckets is not None:
            self.figure_buckets = _str_sequence(buckets.value)
        bucket_map = _find_assign(tree, "_BUCKET_BY_OP")
        if bucket_map is not None and isinstance(bucket_map.value, ast.Dict):
            self.ref_bucket_by_op = SourceRef(
                WORKREPORT_PATH, bucket_map.lineno
            )
            for key, value in zip(
                bucket_map.value.keys, bucket_map.value.values
            ):
                if key is None:
                    continue
                op_name = _op_attr_name(key)
                if op_name is not None and isinstance(value, ast.Constant):
                    self.bucket_by_op[op_name] = value.value

    def _load_variants(self) -> None:
        tree = self._parse(VARIANTS_PATH)
        if tree is None:
            return
        cost_table = _find_assign(tree, "_BASE_COSTS")
        if cost_table is None or not isinstance(cost_table.value, ast.Dict):
            return
        self.ref_cost_table = SourceRef(VARIANTS_PATH, cost_table.lineno)
        for key in cost_table.value.keys:
            if key is None:
                continue
            op_name = _op_attr_name(key)
            if op_name is not None:
                self.cost_ops[op_name] = SourceRef(VARIANTS_PATH, key.lineno)

    def _load_knob_layer(
        self, rel_path: str, class_name: str, attr: str
    ) -> None:
        tree = self._parse(rel_path)
        if tree is None:
            return
        cls_node = _find_class(tree, class_name)
        if cls_node is None:
            return
        constants = _module_constants(tree)
        has_init = any(
            isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
            for stmt in cls_node.body
        )
        if has_init:
            knobs = _init_params(cls_node, constants, rel_path)
        else:
            knobs = _dataclass_fields(cls_node, constants, rel_path)
        setattr(self, attr, knobs)

    def _load_overridable_fields(self) -> None:
        tree = self._parse(SPEC_PATH)
        if tree is None:
            return
        assign = _find_assign(tree, "_OVERRIDABLE_FIELDS")
        if assign is None:
            return
        for name in _str_sequence(assign.value):
            self.overridable_fields[name] = SourceRef(
                SPEC_PATH, assign.lineno
            )

    def _load_provenance(self) -> None:
        tree = self._parse(PROVENANCE_PATH)
        if tree is None:
            return
        for attr, var_name in (
            ("non_measurement_fields", "_NON_MEASUREMENT_FIELDS"),
            ("measurement_fields", "_MEASUREMENT_FIELDS"),
        ):
            assign = _find_assign(tree, var_name)
            if assign is None:
                continue
            self.has_provenance_registry = True
            registry: dict[str, SourceRef] = getattr(self, attr)
            for name in _str_sequence(assign.value):
                registry[name] = SourceRef(PROVENANCE_PATH, assign.lineno)

    def _load_reporting_spec(self) -> None:
        tree = self._parse(REPORTING_SPEC_PATH)
        if tree is None:
            return
        metric_fields = _find_assign(tree, "METRIC_FIELDS")
        if metric_fields is not None and isinstance(
            metric_fields.value, ast.Dict
        ):
            for key in metric_fields.value.keys:
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    self.metric_fields[key.value] = SourceRef(
                        REPORTING_SPEC_PATH, key.lineno
                    )
        sidecar = _find_assign(tree, "SIDECAR_METRICS")
        if sidecar is not None and isinstance(sidecar.value, ast.Dict):
            self.ref_sidecar_metrics = SourceRef(
                REPORTING_SPEC_PATH, sidecar.lineno
            )
            for key, value in zip(sidecar.value.keys, sidecar.value.values):
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    self.sidecar_metrics[key.value] = _str_sequence(value)

    def _load_obs_registry(self) -> None:
        """``OBS_METRICS`` entries: exported name -> declared source.

        Each value is a ``(prom type, source, label, help)`` tuple; only
        the source (what sidecar stream or section the value derives
        from) matters to the cross-checks, so malformed values simply
        record an empty source.
        """
        tree = self._parse(OBS_REGISTRY_PATH)
        if tree is None:
            return
        registry = _find_assign(tree, "OBS_METRICS")
        if registry is None or not isinstance(registry.value, ast.Dict):
            return
        self.ref_obs_metrics = SourceRef(OBS_REGISTRY_PATH, registry.lineno)
        for key, value in zip(registry.value.keys, registry.value.values):
            if not (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
            ):
                continue
            source = ""
            if isinstance(value, ast.Tuple) and len(value.elts) >= 2:
                second = value.elts[1]
                if isinstance(second, ast.Constant) and isinstance(
                    second.value, str
                ):
                    source = second.value
            self.obs_metrics[key.value] = source
            self.obs_metric_refs[key.value] = SourceRef(
                OBS_REGISTRY_PATH, key.lineno
            )
