"""The ``repro lint`` verb: run the invariant checkers from the CLI.

Exit codes: 0 — no findings (after baseline subtraction); 1 — findings;
2 — usage errors (bad path, corrupt baseline).  Output is
byte-deterministic across runs on an unchanged tree, which is itself
under test.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.baseline import BASELINE_FILENAME, Baseline
from repro.lint.engine import LintEngine
from repro.lint.findings import render_json, render_text

__all__ = ["add_lint_parser", "run_lint"]


def add_lint_parser(sub) -> argparse.ArgumentParser:
    """Attach the ``lint`` subcommand to the ``repro`` CLI."""
    lint = sub.add_parser(
        "lint",
        help="run the static invariant checkers (determinism, op "
        "accounting, knob threading, provenance hygiene)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="findings output format (default: text)",
    )
    lint.add_argument(
        "--root",
        default=None,
        help="project root the registries and the baseline live under "
        "(default: current directory)",
    )
    lint.add_argument(
        "--baseline",
        action="store_true",
        help=f"subtract the committed {BASELINE_FILENAME} — fail only "
        "on new findings",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help=f"rewrite {BASELINE_FILENAME} from this run's findings "
        "and exit 0",
    )
    lint.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="additionally write the JSON findings document to FILE "
        "(CI artifact), regardless of --format",
    )
    return lint


def run_lint(args: argparse.Namespace) -> int:
    root = Path(args.root) if args.root else Path.cwd()
    engine = LintEngine(root)
    findings = engine.run([Path(p) for p in args.paths])
    baseline_path = engine.root / BASELINE_FILENAME

    if args.update_baseline:
        count = Baseline.write(baseline_path, findings)
        print(
            f"recorded {count} suppression(s) in {baseline_path}; "
            "review and commit the diff"
        )
        return 0

    suppressed = 0
    if args.baseline:
        findings, suppressed = Baseline.load(baseline_path).filter(findings)

    if args.out:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(render_json(findings))

    if args.format == "json":
        sys.stdout.write(render_json(findings))
    else:
        sys.stdout.write(render_text(findings))
        if suppressed:
            sys.stdout.write(
                f"({suppressed} baselined finding(s) suppressed)\n"
            )
    return 1 if findings else 0
