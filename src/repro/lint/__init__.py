"""Meterstick-lint: AST-based invariant checks for measurement hygiene.

Every correctness claim this repo makes — serial==parallel campaigns,
batched==scalar engines, trace-off==seed-path bit-identity, byte-stable
report renders — rests on conventions nothing enforced statically: no
wall-clock or unseeded-RNG reads inside the simulation, complete Op
cost/bucket registries, knobs threaded consistently through
``MLGServer`` / ``MeterstickConfig`` / ``CampaignSpec``, and
timestamp-free provenance fingerprints.  A parity test only catches a
violation it happens to exercise; these checkers catch the whole class
at diff time.

Entry points: ``repro lint [paths]`` (see :mod:`repro.lint.cli`) and
:func:`repro.lint.engine.lint_paths` for programmatic use.
"""

from repro.lint.baseline import Baseline
from repro.lint.engine import LintEngine, lint_paths
from repro.lint.findings import (
    Finding,
    findings_from_json,
    render_json,
    render_text,
)

__all__ = [
    "Baseline",
    "Finding",
    "LintEngine",
    "findings_from_json",
    "lint_paths",
    "render_json",
    "render_text",
]
