"""Inline suppression pragmas: ``# lint: allow[MSLnnn] <justification>``.

A pragma on a physical line suppresses the named rules *on that line*
(the line a finding anchors to, i.e. the AST node's ``lineno``).  Every
pragma must carry a justification — an allowlist entry nobody can read
the reason for is itself a hygiene failure — and every pragma must
actually suppress something, so stale allowlists cannot accumulate.
Both failure modes are reported as rule ``MSL000``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["PRAGMA_RULE", "Pragma", "scan_pragmas"]

#: The engine-level rule id for pragma hygiene findings.
PRAGMA_RULE = "MSL000"

_PRAGMA_RE = re.compile(
    r"#\s*lint:\s*allow\[(?P<rules>[A-Z0-9,\s]+)\]\s*(?P<reason>.*)$"
)


@dataclass
class Pragma:
    """One parsed ``# lint: allow[...]`` comment."""

    line: int
    col: int
    rules: tuple[str, ...]
    justification: str
    #: Rules this pragma actually suppressed during the run.
    used: set[str] = field(default_factory=set)

    def allows(self, rule: str) -> bool:
        return rule in self.rules


def scan_pragmas(source: str) -> dict[int, Pragma]:
    """Parse all pragmas in ``source``, keyed by 1-based line number.

    A plain regex over physical lines is enough here: the pragma grammar
    forbids ``]`` inside the rule list, and a pragma inside a string
    literal would be a deliberate attempt to confuse the linter, not an
    accident worth engineering against.
    """
    pragmas: dict[int, Pragma] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            part.strip()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        pragmas[lineno] = Pragma(
            line=lineno,
            col=match.start() + 1,
            rules=rules,
            justification=match.group("reason").strip(),
        )
    return pragmas
