"""The project-specific checkers (MSL001–MSL008).

Each checker subscribes to the AST node types it cares about; the engine
walks each tree exactly once and dispatches.  Cross-file rules also get
a ``finalize`` pass over the :class:`~repro.lint.symbols.ProjectSymbols`
registries after every file has been visited.

Rule inventory (the README carries the user-facing table):

=======  ==============================================================
MSL001   determinism hazards in simulation/executor paths: wall-clock
         reads, module-level RNG APIs, unsorted directory listings,
         iteration over set expressions whose order escapes
MSL002   op accounting: every ``Op`` constant priced, bucketed, listed
         in ``Op.ALL``; every ``report.add`` site names a registered Op
MSL003   knob threading: MLGServer / MeterstickConfig / CampaignSpec
         declare the same knobs with the same defaults
MSL004   provenance hygiene: every config/spec field is explicitly
         fingerprinted or excluded in tracing/provenance.py
MSL005   telemetry registration: every bus-published metric is in the
         reporting sidecar-metric registry (and vice versa)
MSL006   rng discipline: functions taking ``rng``/``seed`` must not
         construct their own generator; ``default_rng()`` must be seeded
MSL007   transport layering: emulation code may import only the session
         boundary (``repro.mlg.transport``/``protocol``), never server
         internals
MSL008   obs registration: every metric exported to the obs endpoint is
         in ``OBS_METRICS`` (and vice versa), and every registry entry
         names a real sidecar stream or obs section as its source
=======  ==============================================================
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import FileContext, ProjectContext

__all__ = ["ALL_CHECKERS", "Checker", "RULES"]

#: Directories (project-root-relative, posix) that constitute the
#: deterministic simulation/executor/reporting surface MSL001 polices.
#: ``tracing`` and ``core`` are deliberately out: provenance manifests
#: and the perf-baseline harness legitimately read the wall clock.
SIM_PATH_PREFIXES = (
    "src/repro/mlg/",
    "src/repro/workloads/",
    "src/repro/persistence/",
    "src/repro/campaign/",
    "src/repro/reporting/",
)

#: Wall-clock reads (fully-resolved dotted names).  ``perf_counter`` /
#: ``monotonic`` are absent on purpose: measuring how long the *harness*
#: took never feeds the simulation, and banning them would just breed
#: pragmas on every phase-timing line.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.asctime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: numpy.random module-level names that are *not* hazards: constructing
#: an explicitly-seeded generator is the sanctioned pattern (MSL006
#: checks the seeding discipline).
NP_RANDOM_SAFE = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Module-level filesystem listing calls with OS-dependent order.
FS_LISTING_CALLS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)

#: Path-object methods with OS-dependent order.
FS_LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})

#: Call sinks whose result is order-insensitive, so an unsorted listing
#: or set iteration feeding them directly is fine.
ORDER_SAFE_SINKS = frozenset(
    {"sorted", "set", "frozenset", "len", "sum", "min", "max", "any", "all"}
)

#: MLGServer.__init__ parameters that are wiring, not knobs: injected
#: collaborators and server-local tuning that deliberately never appear
#: on MeterstickConfig.  NB ``world`` collides across layers by name
#: only: the server takes a World *object*, the config's ``world`` is a
#: workload name (threaded via the spec's ``workloads`` axis).
SERVER_LOCAL_PARAMS = frozenset(
    {"variant", "machine", "world", "clock", "telemetry_window"}
)

#: Config knobs the campaign layer derives instead of declaring:
#: ``world_cache_dir`` is computed from ``warm_world_cache`` per cell.
SPEC_DERIVED_KNOBS = frozenset({"world_cache_dir"})

#: rule id -> (severity, one-line summary) — the registry the CLI and
#: README table are generated from.
RULES = {
    "MSL000": ("warning", "pragma hygiene (missing justification, unused)"),
    "MSL001": ("error", "determinism hazard in a simulation path"),
    "MSL002": ("error", "op accounting registry incomplete or stale"),
    "MSL003": ("error", "config knob not threaded consistently"),
    "MSL004": ("error", "config field missing a provenance decision"),
    "MSL005": ("error", "bus metric missing from the sidecar registry"),
    "MSL006": ("error", "rng constructed instead of threaded"),
    "MSL007": ("error", "emulation imports mlg internals past the transport boundary"),
    "MSL008": ("error", "obs metric missing from the endpoint registry"),
}

#: MSL008: registry sources that are obs-plane sections rather than
#: sidecar metric streams.  ``tap``/``trace`` summarise the live server;
#: ``campaign`` entries are aggregated by the campaign parent.
OBS_ALLOWED_SECTIONS = frozenset({"tap", "trace", "campaign"})

#: MSL007: the only ``repro.mlg`` modules emulation code may touch — the
#: session boundary itself and the pure protocol vocabulary.  Everything
#: else (server, netqueue, world, variants, ...) is server-side internals
#: a wire-backed fleet cannot have.
EMULATION_ALLOWED_MLG = frozenset(
    {"repro.mlg.transport", "repro.mlg.protocol"}
)

#: Where the emulation (client) side of the transport boundary lives.
EMULATION_PATH_PREFIX = "src/repro/emulation/"


class Checker:
    """Base checker: subscribe to node types, visit, finalize."""

    rule = "MSL000"
    #: AST node types this checker wants to see.
    interests: tuple[type, ...] = ()

    @property
    def severity(self) -> str:
        return RULES[self.rule][0]

    def applies_to(self, rel_path: str) -> bool:
        return True

    def visit(self, node: ast.AST, ctx: "FileContext") -> None:
        """Called once per matching node during the single file walk."""

    def finalize(self, ctx: "ProjectContext") -> None:
        """Called once after all files, for registry-level checks."""

    # -- helpers ------------------------------------------------------------

    def report(
        self,
        ctx: "FileContext",
        node: ast.AST,
        message: str,
    ) -> None:
        ctx.add(
            Finding(
                rule=self.rule,
                severity=self.severity,
                path=ctx.rel_path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
            )
        )

    def report_at(
        self, ctx: "ProjectContext", path: str, line: int, message: str
    ) -> None:
        ctx.add(
            Finding(
                rule=self.rule,
                severity=self.severity,
                path=path,
                line=line,
                col=1,
                message=message,
            )
        )


def _is_set_expression(node: ast.expr) -> bool:
    """Does ``node`` evaluate to a set (statically obvious cases)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


class DeterminismHazardChecker(Checker):
    """MSL001: wall-clock, ambient RNG, unsorted listings, set order."""

    rule = "MSL001"
    interests = (
        ast.Call,
        ast.For,
        ast.ListComp,
        ast.GeneratorExp,
        ast.DictComp,
    )

    def applies_to(self, rel_path: str) -> bool:
        return rel_path.startswith(SIM_PATH_PREFIXES)

    def visit(self, node: ast.AST, ctx: "FileContext") -> None:
        if isinstance(node, ast.Call):
            self._visit_call(node, ctx)
        elif isinstance(node, ast.For):
            if _is_set_expression(node.iter):
                self.report(
                    ctx,
                    node,
                    "iteration over a set expression — element order "
                    "escapes into the loop body; iterate sorted(...) "
                    "instead",
                )
        else:  # list/generator/dict comprehension
            self._visit_comprehension(node, ctx)

    def _visit_call(self, node: ast.Call, ctx: "FileContext") -> None:
        dotted = ctx.dotted_name(node.func)
        if dotted in WALL_CLOCK_CALLS:
            self.report(
                ctx,
                node,
                f"wall-clock read {dotted}() in a simulation path — "
                "simulated time must come from SimClock (or be pragma'd "
                "as deliberate provenance metadata)",
            )
            return
        if dotted is not None and dotted.startswith("random."):
            self.report(
                ctx,
                node,
                f"module-level stdlib RNG {dotted}() — draws from ambient "
                "process state; thread a seeded numpy Generator instead",
            )
            return
        if (
            dotted is not None
            and dotted.startswith("numpy.random.")
            and dotted.rsplit(".", 1)[1] not in NP_RANDOM_SAFE
        ):
            self.report(
                ctx,
                node,
                f"module-level numpy RNG {dotted}() — draws from the "
                "global generator; thread a seeded Generator instead",
            )
            return
        is_listing = dotted in FS_LISTING_CALLS or (
            dotted is None
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in FS_LISTING_METHODS
        )
        if is_listing and not ctx.order_is_safe(node):
            name = dotted or f".{node.func.attr}"  # type: ignore[union-attr]
            self.report(
                ctx,
                node,
                f"directory listing {name}() in OS order — wrap in "
                "sorted(...) (or feed an order-insensitive sink) so runs "
                "are byte-identical across filesystems",
            )

    def _visit_comprehension(self, node: ast.AST, ctx: "FileContext") -> None:
        # Set-typed iterables feeding a list/generator/dict comprehension
        # leak their order into the result unless the comprehension
        # itself feeds an order-insensitive sink.
        for generator in node.generators:  # type: ignore[attr-defined]
            if _is_set_expression(generator.iter) and not ctx.order_is_safe(
                node
            ):
                self.report(
                    ctx,
                    generator.iter,
                    "comprehension over a set expression — element order "
                    "escapes into the result; sort first",
                )


class OpAccountingChecker(Checker):
    """MSL002: the Op registry, cost table, and bucket map agree."""

    rule = "MSL002"
    interests = (ast.Attribute, ast.Call)

    def visit(self, node: ast.AST, ctx: "FileContext") -> None:
        ops = ctx.project.symbols.ops
        if not ops:
            return
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "Op"
                and node.attr != "ALL"
                and node.attr not in ops
            ):
                self.report(
                    ctx,
                    node,
                    f"Op.{node.attr} is not a registered Op constant "
                    "(see mlg/workreport.py)",
                )
            return
        # report.add("literal") sites: the string must be a registered
        # op *value*.  Only receivers named `report` are considered so
        # unrelated `.add(...)` calls (sets, argparse) stay out of scope.
        func = node.func  # type: ignore[union-attr]
        if not (isinstance(func, ast.Attribute) and func.attr == "add"):
            return
        receiver = func.value
        is_report = (
            isinstance(receiver, ast.Name) and receiver.id == "report"
        ) or (isinstance(receiver, ast.Attribute) and receiver.attr == "report")
        args = node.args  # type: ignore[union-attr]
        if not is_report or not args:
            return
        first = args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            if first.value not in ops.values():
                self.report(
                    ctx,
                    first,
                    f"report.add({first.value!r}) does not name a "
                    "registered Op value — count sites must stay "
                    "attributable to the cost table",
                )

    def finalize(self, ctx: "ProjectContext") -> None:
        symbols = ctx.symbols
        if not ctx.full_scan or not symbols.ops:
            return
        all_listed = set(symbols.op_all)
        for name in symbols.ops:
            ref = symbols.op_refs[name]
            if symbols.op_all and name not in all_listed:
                self.report_at(
                    ctx, ref.path, ref.line, f"Op.{name} missing from Op.ALL"
                )
            if symbols.ref_cost_table and name not in symbols.cost_ops:
                self.report_at(
                    ctx,
                    ref.path,
                    ref.line,
                    f"Op.{name} has no cost in variants._BASE_COSTS — "
                    "uncosted work silently vanishes from tick time",
                )
            if symbols.ref_bucket_by_op and name not in symbols.bucket_by_op:
                self.report_at(
                    ctx,
                    ref.path,
                    ref.line,
                    f"Op.{name} has no explicit _BUCKET_BY_OP entry — "
                    "map it (use 'Other' deliberately, not by fallback)",
                )
        for name in all_listed:
            if name not in symbols.ops and symbols.ref_op_all:
                ref = symbols.ref_op_all
                self.report_at(
                    ctx,
                    ref.path,
                    ref.line,
                    f"Op.ALL lists unknown constant {name}",
                )
        for name, ref in symbols.cost_ops.items():
            if name not in symbols.ops:
                self.report_at(
                    ctx,
                    ref.path,
                    ref.line,
                    f"stale cost-table entry Op.{name}: no such constant",
                )
        if symbols.ref_bucket_by_op:
            ref = symbols.ref_bucket_by_op
            for name, bucket in symbols.bucket_by_op.items():
                if name not in symbols.ops:
                    self.report_at(
                        ctx,
                        ref.path,
                        ref.line,
                        f"stale bucket entry Op.{name}: no such constant",
                    )
                if symbols.figure_buckets and (
                    bucket not in symbols.figure_buckets
                ):
                    self.report_at(
                        ctx,
                        ref.path,
                        ref.line,
                        f"Op.{name} maps to unknown bucket {bucket!r} "
                        "(not in FIGURE11_BUCKETS)",
                    )


class KnobThreadingChecker(Checker):
    """MSL003: server/config/spec knobs exist on all layers, same default."""

    rule = "MSL003"
    interests = ()

    def finalize(self, ctx: "ProjectContext") -> None:
        symbols = ctx.symbols
        server = symbols.server_knobs
        config = symbols.config_knobs
        spec = symbols.spec_knobs
        if not ctx.full_scan or not (server and config and spec):
            return
        for name, server_knob in sorted(server.items()):
            if name in SERVER_LOCAL_PARAMS:
                continue
            config_knob = config.get(name)
            if config_knob is None:
                self.report_at(
                    ctx,
                    server_knob.ref.path,
                    server_knob.ref.line,
                    f"MLGServer knob {name!r} is not declared on "
                    "MeterstickConfig — campaigns cannot set it",
                )
                continue
            spec_knob = spec.get(name)
            if spec_knob is None and name not in SPEC_DERIVED_KNOBS:
                self.report_at(
                    ctx,
                    config_knob.ref.path,
                    config_knob.ref.line,
                    f"knob {name!r} is declared on MLGServer and "
                    "MeterstickConfig but missing from CampaignSpec — "
                    "thread it through all three layers",
                )
            self._check_default(
                ctx, name, "MLGServer", server_knob, "MeterstickConfig",
                config_knob,
            )
            if spec_knob is not None:
                self._check_default(
                    ctx, name, "MeterstickConfig", config_knob,
                    "CampaignSpec", spec_knob,
                )
        for name, ref in sorted(symbols.overridable_fields.items()):
            if name not in config:
                self.report_at(
                    ctx,
                    ref.path,
                    ref.line,
                    f"_OVERRIDABLE_FIELDS lists {name!r}, which is not a "
                    "MeterstickConfig field",
                )

    def _check_default(
        self,
        ctx: "ProjectContext",
        name: str,
        layer_a: str,
        knob_a,
        layer_b: str,
        knob_b,
    ) -> None:
        if not (knob_a.has_default and knob_b.has_default):
            return
        if knob_a.default != knob_b.default:
            self.report_at(
                ctx,
                knob_b.ref.path,
                knob_b.ref.line,
                f"knob {name!r} defaults diverge: {layer_a} uses "
                f"{knob_a.default!r}, {layer_b} uses {knob_b.default!r}",
            )


class ProvenanceHygieneChecker(Checker):
    """MSL004: every config/spec field has an explicit provenance fate."""

    rule = "MSL004"
    interests = ()

    def finalize(self, ctx: "ProjectContext") -> None:
        symbols = ctx.symbols
        if not ctx.full_scan or not symbols.has_provenance_registry:
            return
        config = symbols.config_knobs
        spec = symbols.spec_knobs
        if not (config or spec):
            return
        fingerprinted = set(symbols.measurement_fields)
        excluded = set(symbols.non_measurement_fields)
        fields: dict[str, object] = {}
        fields.update(spec)
        fields.update(config)  # config wins for shared names (same fate)
        for name, knob in sorted(fields.items()):
            registered = (name in fingerprinted) + (name in excluded)
            if registered == 0:
                self.report_at(
                    ctx,
                    knob.ref.path,  # type: ignore[attr-defined]
                    knob.ref.line,  # type: ignore[attr-defined]
                    f"config field {name!r} has no provenance decision — "
                    "add it to _MEASUREMENT_FIELDS (fingerprinted) or "
                    "_NON_MEASUREMENT_FIELDS (excluded) in "
                    "tracing/provenance.py",
                )
            elif registered == 2:
                ref = symbols.measurement_fields[name]
                self.report_at(
                    ctx,
                    ref.path,
                    ref.line,
                    f"config field {name!r} is listed as both fingerprinted "
                    "and excluded in tracing/provenance.py",
                )
        for name, ref in sorted(
            {**symbols.measurement_fields, **symbols.non_measurement_fields}
            .items()
        ):
            if name not in fields:
                self.report_at(
                    ctx,
                    ref.path,
                    ref.line,
                    f"stale provenance registry entry {name!r}: not a field "
                    "of MeterstickConfig or CampaignSpec",
                )


class TelemetryRegistrationChecker(Checker):
    """MSL005: published bus metrics exist in the sidecar registry."""

    rule = "MSL005"
    interests = (ast.Call,)

    def __init__(self) -> None:
        self.published: dict[str, tuple[str, int]] = {}

    def visit(self, node: ast.AST, ctx: "FileContext") -> None:
        func = node.func  # type: ignore[union-attr]
        if not (isinstance(func, ast.Attribute) and func.attr == "publish"):
            return
        args = node.args  # type: ignore[union-attr]
        if not args:
            return
        metric = ctx.resolve_str(args[0])
        if metric is None:
            return
        self.published.setdefault(
            metric, (ctx.rel_path, args[0].lineno)
        )
        registry = ctx.project.symbols.sidecar_metrics
        if ctx.project.symbols.ref_sidecar_metrics and metric not in registry:
            self.report(
                ctx,
                args[0],
                f"metric {metric!r} is published to the bus but missing "
                "from reporting SIDECAR_METRICS — reports cannot pivot "
                "on it",
            )

    def finalize(self, ctx: "ProjectContext") -> None:
        symbols = ctx.symbols
        if not ctx.full_scan or symbols.ref_sidecar_metrics is None:
            return
        ref = symbols.ref_sidecar_metrics
        for metric, fields in sorted(symbols.sidecar_metrics.items()):
            if metric not in self.published:
                self.report_at(
                    ctx,
                    ref.path,
                    ref.line,
                    f"SIDECAR_METRICS entry {metric!r} is never published "
                    "to a telemetry bus — stale registry entry",
                )
            for field_name in fields:
                if (
                    symbols.metric_fields
                    and field_name not in symbols.metric_fields
                ):
                    self.report_at(
                        ctx,
                        ref.path,
                        ref.line,
                        f"SIDECAR_METRICS[{metric!r}] names {field_name!r}, "
                        "which is not a METRIC_FIELDS report metric",
                    )


class RngDisciplineChecker(Checker):
    """MSL006: RNGs are threaded, never ambiently constructed."""

    rule = "MSL006"
    interests = (ast.Call,)

    def visit(self, node: ast.AST, ctx: "FileContext") -> None:
        func = node.func  # type: ignore[union-attr]
        dotted = ctx.dotted_name(func)
        is_default_rng = (dotted or "").endswith("default_rng") or (
            isinstance(func, ast.Name) and func.id == "default_rng"
        )
        args = node.args  # type: ignore[union-attr]
        if dotted == "numpy.random.seed":
            self.report(
                ctx,
                node,
                "numpy.random.seed() reseeds the *global* generator — "
                "construct and thread a local default_rng(seed) instead",
            )
            return
        if dotted == "random.Random" and not args:
            self.report(
                ctx,
                node,
                "random.Random() without a seed draws from ambient "
                "process state — pass an explicit seed",
            )
            return
        if not is_default_rng:
            return
        if not args:
            self.report(
                ctx,
                node,
                "default_rng() without a seed is nondeterministic — "
                "every generator must derive from an explicit seed",
            )
            return
        enclosing = ctx.enclosing_function(node)
        if enclosing is None:
            return
        params = ctx.function_params(enclosing)
        if "rng" not in params and "seed" not in params:
            return
        referenced = {
            leaf.id
            for arg in args
            for leaf in ast.walk(arg)
            if isinstance(leaf, ast.Name)
        }
        if not (referenced & params):
            self.report(
                ctx,
                node,
                f"{enclosing.name}() takes rng/seed but constructs "
                "default_rng(...) from values unrelated to its "
                "parameters — thread the caller's RNG or seed through",
            )


class TransportLayeringChecker(Checker):
    """MSL007: emulation sees only the session boundary, never the server.

    The parity guarantee between in-process and wire-backed fleets holds
    because bots can only do what :class:`~repro.mlg.transport
    .ServerSession` offers.  A single ``server.world`` reach-in would
    compile fine in-process and be impossible over a socket, so the
    boundary is enforced at import level: ``repro.mlg.transport`` and
    ``repro.mlg.protocol`` are the whole allowed surface.
    """

    rule = "MSL007"
    interests = (ast.Import, ast.ImportFrom)

    def applies_to(self, rel_path: str) -> bool:
        return rel_path.startswith(EMULATION_PATH_PREFIX)

    def visit(self, node: ast.AST, ctx: "FileContext") -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                self._check(ctx, node, alias.name)
            return
        module = node.module or ""  # type: ignore[union-attr]
        if node.level:  # type: ignore[union-attr]
            return  # relative import: stays inside repro.emulation
        if module == "repro.mlg":
            # `from repro.mlg import X` imports submodule or name X.
            for alias in node.names:  # type: ignore[union-attr]
                self._check(ctx, node, f"{module}.{alias.name}")
            return
        self._check(ctx, node, module)

    def _check(self, ctx: "FileContext", node: ast.AST, module: str) -> None:
        if not (module == "repro.mlg" or module.startswith("repro.mlg.")):
            return
        if module in EMULATION_ALLOWED_MLG:
            return
        self.report(
            ctx,
            node,
            f"emulation imports {module!r} — bots may touch only the "
            "session boundary (repro.mlg.transport / repro.mlg.protocol); "
            "anything else cannot exist on the wire-client side",
        )


class ObsRegistrationChecker(Checker):
    """MSL008: obs-endpoint exports match the ``OBS_METRICS`` registry."""

    rule = "MSL008"
    interests = (ast.Call,)

    def __init__(self) -> None:
        self.exported: dict[str, tuple[str, int]] = {}

    def visit(self, node: ast.AST, ctx: "FileContext") -> None:
        func = node.func  # type: ignore[union-attr]
        if not (isinstance(func, ast.Attribute) and func.attr == "export"):
            return
        args = node.args  # type: ignore[union-attr]
        if not args:
            return
        metric = ctx.resolve_str(args[0])
        if metric is None:
            return
        self.exported.setdefault(metric, (ctx.rel_path, args[0].lineno))
        registry = ctx.project.symbols.obs_metrics
        if ctx.project.symbols.ref_obs_metrics and metric not in registry:
            self.report(
                ctx,
                args[0],
                f"metric {metric!r} is exported to the obs endpoint but "
                "missing from OBS_METRICS — scrapers cannot rely on it",
            )

    def finalize(self, ctx: "ProjectContext") -> None:
        symbols = ctx.symbols
        if not ctx.full_scan or symbols.ref_obs_metrics is None:
            return
        sidecar = symbols.sidecar_metrics
        for metric, source in sorted(symbols.obs_metrics.items()):
            ref = symbols.obs_metric_refs.get(metric, symbols.ref_obs_metrics)
            if metric not in self.exported:
                self.report_at(
                    ctx,
                    ref.path,
                    ref.line,
                    f"OBS_METRICS entry {metric!r} is never exported to the "
                    "obs endpoint — stale registry entry",
                )
            if (
                sidecar
                and source not in sidecar
                and source not in OBS_ALLOWED_SECTIONS
            ):
                self.report_at(
                    ctx,
                    ref.path,
                    ref.line,
                    f"OBS_METRICS[{metric!r}] names source {source!r}, which "
                    "is neither a SIDECAR_METRICS stream nor an obs section",
                )


#: Checker classes in rule order; the engine instantiates fresh ones
#: per run (MSL005/MSL008 carry cross-file state).
ALL_CHECKERS = (
    DeterminismHazardChecker,
    OpAccountingChecker,
    KnobThreadingChecker,
    ProvenanceHygieneChecker,
    TelemetryRegistrationChecker,
    RngDisciplineChecker,
    TransportLayeringChecker,
    ObsRegistrationChecker,
)
