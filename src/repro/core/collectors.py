"""Metric collection (Fig. 5 components 7 and 8, Table 5).

The **Metric Externalizer** reads application-level metrics through the
server's introspection surface (the stand-in for JMX): tick durations and
the tick-time distribution across workload operations.  The **System
Metrics Collector** samples OS-level metrics twice per second of simulated
time: CPU, memory (with a JVM-ish GC sawtooth), threads, disk I/O, and
network I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mlg.constants import TICK_BUDGET_US
from repro.mlg.server import MLGServer

__all__ = [
    "MetricExternalizer",
    "SystemMetricsCollector",
    "SystemSample",
    "TickDistribution",
]

#: System sampling interval: "queries the operating system twice per
#: second" (§3.5.2).
SAMPLE_INTERVAL_US = 500_000


@dataclass(frozen=True)
class TickDistribution:
    """Share of total tick time per Figure 11 bucket, including waits."""

    shares: dict[str, float]

    def non_wait_shares(self) -> dict[str, float]:
        """Re-normalized shares with the wait buckets removed."""
        active = {
            bucket: share
            for bucket, share in self.shares.items()
            if not bucket.startswith("Wait")
        }
        total = sum(active.values())
        if total <= 0:
            return {bucket: 0.0 for bucket in active}
        return {bucket: share / total for bucket, share in active.items()}


class MetricExternalizer:
    """Application-level metrics read from the running server."""

    def __init__(self, server: MLGServer) -> None:
        self.server = server

    def tick_durations_ms(self) -> list[float]:
        return [r.duration_ms for r in self.server.tick_records]

    def tick_distribution(self) -> TickDistribution:
        """Aggregate tick-time shares across the whole run.

        Work buckets come from priced operation counts; ``Wait After`` is
        measured idle time after fast ticks, and ``Wait Before`` is the
        input-poll segment at the head of the tick (a fixed slice of the
        tick overhead, as in the paper's instrumentation).
        """
        totals: dict[str, float] = {}
        wait_after = 0.0
        wall = 0.0
        for record in self.server.tick_records:
            for bucket, us in record.breakdown_us.items():
                totals[bucket] = totals.get(bucket, 0.0) + us
            wait_after += record.wait_us
            wall += record.duration_us + record.wait_us
        if wall <= 0:
            return TickDistribution({})
        # The work breakdown is in simulated CPU µs; rescale it onto the
        # measured (noisy) durations so shares sum to 1 with the waits.
        work_total = sum(totals.values())
        duration_total = wall - wait_after
        scale = duration_total / work_total if work_total > 0 else 0.0
        shares = {
            bucket: us * scale / wall for bucket, us in totals.items()
        }
        # Carve the input-poll slice out of "Other".
        wait_before = min(shares.get("Other", 0.0), 0.1 * duration_total / wall)
        shares["Other"] = shares.get("Other", 0.0) - wait_before
        shares["Wait Before"] = wait_before
        shares["Wait After"] = wait_after / wall
        return TickDistribution(shares)


@dataclass(frozen=True)
class SystemSample:
    """One 2 Hz sample of system-level metrics (Table 5)."""

    t_us: int
    cpu_utilization: float
    memory_bytes: int
    threads: int
    disk_read_bytes: int
    disk_write_bytes: int
    net_sent_bytes: int
    net_recv_bytes: int


class SystemMetricsCollector:
    """Samples system metrics at 2 Hz of simulated time."""

    def __init__(self, server: MLGServer) -> None:
        self.server = server
        self.samples: list[SystemSample] = []
        self._next_sample_us = server.clock.now_us
        self._last_cpu_used = 0.0
        self._last_wall = 0.0
        self._gc_phase = 0.0

    def maybe_sample(self) -> int:
        """Take all due samples; returns how many were taken.

        Call after every tick; catch-up sampling during long ticks emits
        the backlog, like a real collector polling on its own thread.
        """
        taken = 0
        now = self.server.clock.now_us
        while self._next_sample_us <= now:
            self._take(self._next_sample_us)
            self._next_sample_us += SAMPLE_INTERVAL_US
            taken += 1
        return taken

    def _take(self, t_us: int) -> None:
        server = self.server
        machine = server.machine
        cpu_used = machine.cpu_used_us
        wall = max(1.0, machine.wall_observed_us)
        d_cpu = cpu_used - self._last_cpu_used
        d_wall = wall - self._last_wall
        utilization = 0.0
        if d_wall > 0:
            utilization = min(
                1.0, d_cpu / (d_wall * machine.spec.vcpus)
            )
        self._last_cpu_used = cpu_used
        self._last_wall = wall
        # JVM heap sawtooth: allocation climbs, young-GC drops it back.
        self._gc_phase = (self._gc_phase + 0.13) % 1.0
        heap_jitter = int(120e6 * self._gc_phase)
        stats = server.net.stats
        self.samples.append(
            SystemSample(
                t_us=t_us,
                cpu_utilization=utilization,
                memory_bytes=server.memory_bytes() + heap_jitter,
                threads=server.thread_count,
                disk_read_bytes=server.disk_bytes_read,
                disk_write_bytes=server.disk_bytes_written,
                net_sent_bytes=stats.total_bytes,
                net_recv_bytes=server.net.bytes_in_total,
            )
        )

    # -- summaries ---------------------------------------------------------------

    def summary(self) -> dict[str, float]:
        if not self.samples:
            return {}
        cpu = [s.cpu_utilization for s in self.samples]
        mem = [s.memory_bytes for s in self.samples]
        return {
            "cpu_mean": sum(cpu) / len(cpu),
            "cpu_max": max(cpu),
            "memory_mean_mb": sum(mem) / len(mem) / 1e6,
            "memory_max_mb": max(mem) / 1e6,
            "threads": float(self.samples[-1].threads),
            "disk_write_bytes": float(self.samples[-1].disk_write_bytes),
            "net_sent_bytes": float(self.samples[-1].net_sent_bytes),
            "net_recv_bytes": float(self.samples[-1].net_recv_bytes),
            "samples": float(len(self.samples)),
        }
