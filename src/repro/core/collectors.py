"""Metric collection (Fig. 5 components 7 and 8, Table 5).

The **Metric Externalizer** reads application-level metrics through the
server's introspection surface (the stand-in for JMX): tick durations and
the tick-time distribution across workload operations.  The **System
Metrics Collector** samples OS-level metrics twice per second of simulated
time: CPU, memory (with a JVM-ish GC sawtooth), threads, disk I/O, and
network I/O.

Both collectors now ride the streaming telemetry layer
(:mod:`repro.telemetry`): the externalizer's Fig. 11 distribution comes
from bucket totals the game loop folds once per tick (instead of
re-walking every ``TickRecord`` per call), and the system collector keeps
per-metric accumulators so its summary needs O(1) memory.  The raw
``samples`` list is only retained when the server runs with
``retain_raw=True`` (the default, and what the figure pipeline uses).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mlg.server import MLGServer
from repro.telemetry.accumulators import MetricAccumulator

__all__ = [
    "MetricExternalizer",
    "SystemMetricsCollector",
    "SystemSample",
    "TickDistribution",
]

#: System sampling interval: "queries the operating system twice per
#: second" (§3.5.2).
SAMPLE_INTERVAL_US = 500_000


@dataclass(frozen=True)
class TickDistribution:
    """Share of total tick time per Figure 11 bucket, including waits."""

    shares: dict[str, float]

    def non_wait_shares(self) -> dict[str, float]:
        """Re-normalized shares with the wait buckets removed."""
        active = {
            bucket: share
            for bucket, share in self.shares.items()
            if not bucket.startswith("Wait")
        }
        total = sum(active.values())
        if total <= 0:
            return {bucket: 0.0 for bucket in active}
        return {bucket: share / total for bucket, share in active.items()}


class MetricExternalizer:
    """Application-level metrics read from the running server."""

    def __init__(self, server: MLGServer) -> None:
        self.server = server

    def tick_durations_ms(self) -> list[float]:
        return self.server.tick_durations_ms()

    def tick_distribution(self) -> TickDistribution:
        """Aggregate tick-time shares across the whole run.

        Work buckets come from priced operation counts; ``Wait After`` is
        measured idle time after fast ticks, and ``Wait Before`` is the
        input-poll segment at the head of the tick (a fixed slice of the
        tick overhead, as in the paper's instrumentation).

        The totals are folded once per tick by the server's telemetry
        tap, so this is O(buckets) per call however long the run is.
        """
        telemetry = self.server.telemetry
        totals = dict(telemetry.bucket_totals_us)
        wait_after = telemetry.wait_after_us
        wall = telemetry.wall_us
        if wall <= 0:
            return TickDistribution({})
        # The work breakdown is in simulated CPU µs; rescale it onto the
        # measured (noisy) durations so shares sum to 1 with the waits.
        work_total = sum(totals.values())
        duration_total = wall - wait_after
        scale = duration_total / work_total if work_total > 0 else 0.0
        shares = {
            bucket: us * scale / wall for bucket, us in totals.items()
        }
        # Carve the input-poll slice out of "Other".
        wait_before = min(shares.get("Other", 0.0), 0.1 * duration_total / wall)
        shares["Other"] = shares.get("Other", 0.0) - wait_before
        shares["Wait Before"] = wait_before
        shares["Wait After"] = wait_after / wall
        return TickDistribution(shares)


@dataclass(frozen=True)
class SystemSample:
    """One 2 Hz sample of system-level metrics (Table 5)."""

    t_us: int
    cpu_utilization: float
    memory_bytes: int
    threads: int
    disk_read_bytes: int
    disk_write_bytes: int
    net_sent_bytes: int
    net_recv_bytes: int


class SystemMetricsCollector:
    """Samples system metrics at 2 Hz of simulated time.

    Summaries come from streaming accumulators; the raw ``samples`` list
    is kept only when ``retain_raw`` is on (defaulting to the server's
    own ``retain_raw`` flag), so long runs do not grow collector memory.
    """

    def __init__(self, server: MLGServer, retain_raw: bool | None = None) -> None:
        self.server = server
        self.retain_raw = (
            server.retain_raw if retain_raw is None else retain_raw
        )
        self.samples: list[SystemSample] = []
        self._next_sample_us = server.clock.now_us
        self._last_cpu_used = 0.0
        self._last_wall = 0.0
        self._gc_phase = 0.0
        self._count = 0
        self._cpu = MetricAccumulator("cpu_utilization", tail_size=128)
        self._memory = MetricAccumulator("memory_bytes", tail_size=128)
        self._last_sample: SystemSample | None = None

    def maybe_sample(self) -> int:
        """Take all due samples; returns how many were taken.

        Call after every tick; catch-up sampling during long ticks emits
        the backlog, like a real collector polling on its own thread.
        The machine's cumulative CPU/wall counters only advance at tick
        granularity, so a backlog is attributed uniformly: every catch-up
        sample gets the window-average utilization (previously the first
        sample absorbed the entire delta and the rest read 0).
        """
        now = self.server.clock.now_us
        due: list[int] = []
        while self._next_sample_us <= now:
            due.append(self._next_sample_us)
            self._next_sample_us += SAMPLE_INTERVAL_US
        if due:
            self._take_batch(due)
        return len(due)

    def _take_batch(self, due: list[int]) -> None:
        server = self.server
        machine = server.machine
        cpu_used = machine.cpu_used_us
        wall = max(1.0, machine.wall_observed_us)
        d_cpu = cpu_used - self._last_cpu_used
        d_wall = wall - self._last_wall
        utilization = 0.0
        if d_wall > 0:
            utilization = min(
                1.0, d_cpu / (d_wall * machine.spec.vcpus)
            )
        self._last_cpu_used = cpu_used
        self._last_wall = wall
        stats = server.net.stats
        # With chunk eviction enabled the heap itself saws: streaming
        # bounds ``world.nbytes``, so ``memory_bytes`` already rises with
        # loading and drops at eviction.  Layering the synthetic GC
        # sawtooth on top would drown that real signal, so it only
        # stands in when the world can just grow monotonically.
        evicting = getattr(server, "eviction_enabled", False)
        for t_us in due:
            # JVM heap sawtooth: allocation climbs, young-GC drops it back.
            self._gc_phase = (self._gc_phase + 0.13) % 1.0
            heap_jitter = 0 if evicting else int(120e6 * self._gc_phase)
            self._observe(
                SystemSample(
                    t_us=t_us,
                    cpu_utilization=utilization,
                    memory_bytes=server.memory_bytes() + heap_jitter,
                    threads=server.thread_count,
                    disk_read_bytes=server.disk_bytes_read,
                    disk_write_bytes=server.disk_bytes_written,
                    net_sent_bytes=stats.total_bytes,
                    net_recv_bytes=server.net.bytes_in_total,
                )
            )

    def _observe(self, sample: SystemSample) -> None:
        self._count += 1
        self._cpu.update(sample.cpu_utilization)
        self._memory.update(sample.memory_bytes)
        self._last_sample = sample
        if self.retain_raw:
            self.samples.append(sample)

    # -- summaries ---------------------------------------------------------------

    def summary(self) -> dict[str, float]:
        if self._count == 0:
            return {}
        last = self._last_sample
        return {
            "cpu_mean": self._cpu.mean,
            "cpu_max": self._cpu.maximum,
            "memory_mean_mb": self._memory.mean / 1e6,
            "memory_max_mb": self._memory.maximum / 1e6,
            "threads": float(last.threads),
            "disk_write_bytes": float(last.disk_write_bytes),
            "net_sent_bytes": float(last.net_sent_bytes),
            "net_recv_bytes": float(last.net_recv_bytes),
            "samples": float(self._count),
        }

    def snapshot(self, include_tails: bool = False) -> dict:
        """Streaming per-metric snapshot (for telemetry sidecars)."""
        return {
            "samples": self._count,
            "cpu_utilization": self._cpu.snapshot(include_tail=include_tails),
            "memory_bytes": self._memory.snapshot(include_tail=include_tails),
        }
