"""Data Visualization component (Fig. 5, #10).

The renderer implementations live in :mod:`repro.reporting.text` — the
reporting engine is the single code path for tables, CSV files, and
ASCII plots — and are re-exported here under their historical names so
existing imports (CLI, benchmarks, examples) keep working unchanged.
"""

from __future__ import annotations

from repro.reporting.text import (
    ascii_boxplot,
    ascii_timeseries,
    format_table,
    write_csv_rows,
    write_csv_series,
)

__all__ = [
    "ascii_boxplot",
    "ascii_timeseries",
    "format_table",
    "write_csv_series",
    "write_csv_rows",
]
