"""Data Retrieval component (Fig. 5, #9): aggregate and export results.

Moves collected data "from the worker nodes to the user's local machine"
— here: from :class:`ExperimentResult` objects to per-iteration CSV files
plus an aggregated summary table, the pre-processing step the paper's
pipeline performs before visualization.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.results import ExperimentResult, IterationResult
from repro.core.visualization import write_csv_rows, write_csv_series

__all__ = ["retrieve", "summary_rows"]

_SUMMARY_HEADERS = (
    "server",
    "workload",
    "environment",
    "iteration",
    "isr",
    "tick_mean_ms",
    "tick_median_ms",
    "tick_p95_ms",
    "tick_max_ms",
    "tick_iqr_ms",
    "rt_mean_ms",
    "rt_p95_ms",
    "rt_max_ms",
    "crashed",
    "throttled_ticks",
    "scale",
    "bots",
    "behavior",
)

#: Fields (besides server/iteration) that can distinguish two iterations
#: of a merged campaign result.
_CELL_FIELDS = ("workload", "environment", "scale", "n_bots", "behavior")


def _series_subdir(result: ExperimentResult):
    """Per-iteration series directory, unique within ``result``.

    A single-config result keeps the flat ``<server>/`` layout; a merged
    campaign (where several cells share a server) nests one directory per
    distinct cell so series files cannot clobber each other.  Only the
    fields that actually vary go into the directory name.
    """
    varying = [
        name
        for name in _CELL_FIELDS
        if len({getattr(it, name) for it in result.iterations}) > 1
    ]

    def subdir(it: IterationResult) -> str:
        if not varying:
            return it.server
        label = "_".join(
            f"{getattr(it, name):g}"
            if isinstance(getattr(it, name), float)
            else str(getattr(it, name))
            for name in varying
        )
        return f"{it.server}/{label}"

    return subdir


def summary_rows(result: ExperimentResult) -> list[list[object]]:
    """One summary row per iteration (the aggregation step)."""
    rows: list[list[object]] = []
    for it in result.iterations:
        tick = it.tick_stats()
        response = it.response_stats()
        rows.append(
            [
                it.server,
                it.workload,
                it.environment,
                it.iteration,
                round(it.isr, 6),
                round(tick["mean"], 3),
                round(tick["median"], 3),
                round(tick["p95"], 3),
                round(tick["max"], 3),
                round(tick["p75"] - tick["p25"], 3),
                round(response["mean"], 3) if response else "",
                round(response["p95"], 3) if response else "",
                round(response["max"], 3) if response else "",
                it.crashed,
                it.throttled_ticks,
                it.scale,
                it.n_bots,
                it.behavior,
            ]
        )
    return rows


def retrieve(result: ExperimentResult, output_dir: str | Path) -> Path:
    """Export everything a campaign measured into ``output_dir``.

    Layout::

        output_dir/
          summary.csv                      one row per iteration
          results.json                     full FAIR export
          <server>/iter<k>_ticks.csv       tick-duration series
          <server>/iter<k>_responses.csv   response-time series

    For a merged campaign result, where one server appears in several
    matrix cells, the series files nest one level deeper —
    ``<server>/<cell>/iter<k>_*.csv`` with ``<cell>`` naming the matrix
    fields that vary — so cells cannot overwrite each other's series.
    """
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    write_csv_rows(
        output_dir / "summary.csv", _SUMMARY_HEADERS, summary_rows(result)
    )
    result.save_json(output_dir / "results.json")
    subdir = _series_subdir(result)
    for it in result.iterations:
        series_dir = output_dir / subdir(it)
        # retain_raw=False runs carry no raw series; their summaries come
        # from the telemetry snapshot and land in summary.csv only.
        if it.tick_durations_ms:
            write_csv_series(
                series_dir / f"iter{it.iteration}_ticks.csv",
                "tick_duration_ms",
                it.tick_durations_ms,
            )
        if it.response_times_ms:
            write_csv_series(
                series_dir / f"iter{it.iteration}_responses.csv",
                "response_time_ms",
                it.response_times_ms,
            )
    return output_dir
