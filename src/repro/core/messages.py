"""Controller protocol messages (Table 1).

The Control Server and Control Clients exchange exactly the paper's
message vocabulary.  ``Dest`` follows the paper's notation: Y = player
emulation workers, M = the MLG server node, C = the controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MessageType", "Message", "DESTINATIONS"]


class MessageType:
    """Table 1's message names."""

    SET_SERVER = "set_server"
    SET_JMX = "set_jmx"
    ITER = "iter"
    INITIALIZE = "initialize"
    LOG_START = "log_start"
    LOG_STOP = "log_stop"
    STOP_SERVER = "stop_server"
    CONNECT = "connect"
    CONVERT = "convert"
    OK = "ok"
    KEEP_ALIVE = "keep_alive"
    ERR = "err"
    EXIT = "exit"

    ALL = (
        SET_SERVER,
        SET_JMX,
        ITER,
        INITIALIZE,
        LOG_START,
        LOG_STOP,
        STOP_SERVER,
        CONNECT,
        CONVERT,
        OK,
        KEEP_ALIVE,
        ERR,
        EXIT,
    )


#: Valid destinations per message type (paper Table 1's "Dest" column).
#: Y = player-emulation worker, M = MLG server node, C = controller.
DESTINATIONS: dict[str, frozenset[str]] = {
    MessageType.SET_SERVER: frozenset({"Y", "M"}),
    MessageType.SET_JMX: frozenset({"M"}),
    MessageType.ITER: frozenset({"Y", "M"}),
    MessageType.INITIALIZE: frozenset({"M"}),
    MessageType.LOG_START: frozenset({"M"}),
    MessageType.LOG_STOP: frozenset({"M"}),
    MessageType.STOP_SERVER: frozenset({"M"}),
    MessageType.CONNECT: frozenset({"Y"}),
    MessageType.CONVERT: frozenset({"Y"}),
    MessageType.OK: frozenset({"C"}),
    MessageType.KEEP_ALIVE: frozenset({"M", "Y"}),
    MessageType.ERR: frozenset({"C"}),
    MessageType.EXIT: frozenset({"M", "Y"}),
}


@dataclass(frozen=True)
class Message:
    """One control-plane message with an optional payload argument."""

    type: str
    payload: str = ""
    sender: str = ""

    def __post_init__(self) -> None:
        if self.type not in MessageType.ALL:
            raise ValueError(f"unknown controller message {self.type!r}")

    def encode(self) -> str:
        """Wire form, e.g. ``set_server:papermc`` or ``initialize``."""
        return f"{self.type}:{self.payload}" if self.payload else self.type

    @classmethod
    def decode(cls, wire: str, sender: str = "") -> "Message":
        type_, _, payload = wire.partition(":")
        return cls(type=type_, payload=payload, sender=sender)
