"""Result records produced by the experiment runner (FAIR-style export).

An :class:`IterationResult` captures everything one iteration measured;
an :class:`ExperimentResult` is the whole campaign plus its configuration,
exportable to JSON/CSV for the Data Retrieval component (Fig. 5, #9).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.metrics import instability_ratio, summarize
from repro.mlg.constants import TICK_BUDGET_MS

__all__ = ["IterationResult", "ExperimentResult"]


def _stats_from_snapshot(snap: dict) -> dict[str, float]:
    """Summary-stats dict from a streaming metric snapshot.

    Mirrors the key names of :func:`repro.metrics.stats.summarize` where
    the streaming state can supply them (quantiles come from the sketch,
    so they are estimates rather than exact order statistics).
    """
    stats = {
        "count": float(snap.get("count", 0)),
        "mean": snap.get("mean", 0.0),
        "std": snap.get("std", 0.0),
        "min": snap.get("min", 0.0),
        "p25": snap.get("p25", 0.0),
        "median": snap.get("p50", 0.0),
        "p75": snap.get("p75", 0.0),
        "p95": snap.get("p95", 0.0),
        "p99": snap.get("p99", 0.0),
        "max": snap.get("max", 0.0),
    }
    for key, value in snap.items():
        if key.startswith("frac_over_"):
            stats[key.replace("frac_over_", "frac_")] = value
    mean = stats["mean"]
    stats["max_over_mean"] = (
        stats["max"] / mean if mean > 0 else float("inf")
    )
    return stats


@dataclass
class IterationResult:
    """All measurements from one (server, iteration) run.

    ``tick_durations_ms``/``response_times_ms`` hold the raw series when
    the run retained them (``retain_raw=True``, the default); with
    ``retain_raw=False`` they are empty and every derived statistic falls
    back to the streaming ``telemetry`` snapshot instead.
    """

    server: str
    workload: str
    environment: str
    iteration: int
    seed: int
    duration_s: float
    tick_durations_ms: list[float]
    response_times_ms: list[float]
    tick_distribution: dict[str, float]
    packet_counts: dict[str, int]
    packet_bytes: dict[str, int]
    entity_message_share: float
    entity_byte_share: float
    system_summary: dict[str, float]
    crashed: bool
    crash_reason: str | None
    throttled_ticks: int
    final_credits_s: float
    # Cell provenance (defaults keep pre-campaign result files loadable).
    scale: float = 1.0
    n_bots: int = 0
    behavior: str = ""
    #: Streaming telemetry snapshot: ``tick`` (ServerTelemetry), ``system``
    #: (SystemMetricsCollector), ``response_ms`` (MetricAccumulator).
    #: Empty for results recorded before the telemetry subsystem.
    telemetry: dict = field(default_factory=dict)
    #: Run-provenance fingerprint (environment + resolved measurement
    #: config + sha256 digest), stamped by the runner.  Deliberately
    #: timestamp-free so re-runs of the same conditions are
    #: byte-identical.  Empty for results recorded before tracing.
    provenance: dict = field(default_factory=dict)

    @property
    def isr(self) -> float:
        """Instability Ratio of this iteration's tick trace (Equation 1).

        Computed from the raw trace when retained; otherwise the exact
        streaming ISR folded tick by tick during the run.
        """
        if self.tick_durations_ms:
            return instability_ratio(self.tick_durations_ms, TICK_BUDGET_MS)
        return float(self.telemetry.get("tick", {}).get("isr", 0.0))

    def tick_stats(self) -> dict[str, float]:
        if self.tick_durations_ms:
            return summarize(self.tick_durations_ms)
        snap = self.telemetry.get("tick", {}).get("tick_ms")
        if not snap:
            return summarize(self.tick_durations_ms)  # raises, as before
        return _stats_from_snapshot(snap)

    def response_stats(self) -> dict[str, float] | None:
        if self.response_times_ms:
            return summarize(self.response_times_ms)
        snap = self.telemetry.get("response_ms")
        if snap and snap.get("count"):
            return _stats_from_snapshot(snap)
        return None

    def to_dict(self) -> dict:
        data = asdict(self)
        data["isr"] = self.isr
        return data


@dataclass
class ExperimentResult:
    """A full campaign: every iteration of every configured server."""

    config: dict
    iterations: list[IterationResult] = field(default_factory=list)

    def for_server(self, server: str) -> list[IterationResult]:
        return [it for it in self.iterations if it.server == server]

    def isr_values(self, server: str | None = None) -> list[float]:
        pool = self.iterations if server is None else self.for_server(server)
        return [it.isr for it in pool]

    def pooled_tick_durations(self, server: str | None = None) -> list[float]:
        pool = self.iterations if server is None else self.for_server(server)
        out: list[float] = []
        for it in pool:
            out.extend(it.tick_durations_ms)
        return out

    def pooled_response_times(
        self, server: str | None = None
    ) -> list[float]:
        pool = self.iterations if server is None else self.for_server(server)
        out: list[float] = []
        for it in pool:
            out.extend(it.response_times_ms)
        return out

    def any_crashed(self, server: str | None = None) -> bool:
        pool = self.iterations if server is None else self.for_server(server)
        return any(it.crashed for it in pool)

    # -- export (Data Retrieval, Fig. 5 #9) ---------------------------------

    def save_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "config": self.config,
            "iterations": [it.to_dict() for it in self.iterations],
        }
        path.write_text(json.dumps(payload, indent=2))
        return path

    @classmethod
    def load_json(cls, path: str | Path) -> "ExperimentResult":
        payload = json.loads(Path(path).read_text())
        iterations = []
        for raw in payload["iterations"]:
            raw = dict(raw)
            raw.pop("isr", None)
            iterations.append(IterationResult(**raw))
        return cls(config=payload["config"], iterations=iterations)
