"""Meterstick configuration (Fig. 5 component 1, Table 4).

All of Table 4's parameters are represented; deployment-oriented ones
(IPs, SSL keys, ports, JMX endpoints) configure the simulated control
plane, and experiment-oriented ones (servers, world, bots, duration,
iterations, scale) configure the runs themselves.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, asdict

from repro.cloud.providers import get_environment
from repro.emulation.behavior import BEHAVIORS
from repro.mlg.variants import get_variant
from repro.workloads import WORKLOADS

__all__ = ["MeterstickConfig", "DEFAULT_JMX_PORT_RANGE", "stable_crc"]

DEFAULT_JMX_PORT_RANGE = (25585, 25635)


def stable_crc(*parts: object) -> int:
    """CRC32 of ``parts`` joined with ``|``, masked to a positive int31.

    The repo-wide stable-hash scheme: CRC32 rather than ``hash()`` because
    Python string hashing is salted per process, which would make seeds
    and job ids unreproducible across runs.  Used for iteration seeds here
    and for campaign job ids in :mod:`repro.campaign.planner`.
    """
    key = "|".join(str(part) for part in parts).encode()
    return zlib.crc32(key) & 0x7FFFFFFF


@dataclass
class MeterstickConfig:
    """One benchmark campaign's configuration (Table 4).

    ``servers`` lists the systems under test by variant name; every server
    runs every iteration of the configured ``world`` workload in
    ``environment``.
    """

    # -- deployment (Table 4: IPs, SSL Keys, Ports, JMX, File Locations) --
    ips: list[str] = field(default_factory=lambda: ["10.0.0.1", "10.0.0.2"])
    ssl_keys: list[str] = field(default_factory=list)
    control_port: int = 25555
    game_port: int = 25565
    jmx_urls: list[str] = field(default_factory=list)
    jmx_port_range: tuple[int, int] = DEFAULT_JMX_PORT_RANGE
    output_dir: str = "meterstick-out"
    resume: bool = False

    # -- systems under test ------------------------------------------------
    servers: list[str] = field(
        default_factory=lambda: ["vanilla", "forge", "papermc"]
    )
    environment: str = "das5-2core"
    ram_gb: float = 4.0
    affinity_mask: int = 0xFFFFFFFF

    # -- workload ----------------------------------------------------------
    world: str = "control"
    number_of_bots: int = 25
    behavior: str = "bounded-random"
    duration_s: float = 60.0
    iterations: int = 1
    scale: float = 1.0

    # -- transport (wire serving) ------------------------------------------
    #: How bots reach the server: ``"inproc"`` (direct-call sessions,
    #: bit-identical to the historical path) or ``"tcp"`` (the asyncio
    #: wire front end, served via ``repro serve`` + ``repro clients``).
    transport: str = "inproc"
    #: TCP port the wire front end binds (0 = OS-assigned ephemeral).
    wire_port: int = 0
    #: Pack per-tick entity moves into batched wire frames instead of one
    #: padded packet per modeled move.
    wire_batch_flush: bool = True

    # -- world persistence & chunk streaming -------------------------------
    #: Live world directory (region files; autosave writes, reloads read).
    #: ``None`` (the default) keeps the purely in-memory world.
    world_dir: str | None = None
    #: Read-only warm-boot source: chunks missing from ``world_dir`` load
    #: from here before falling back to generation.  Campaigns fill it
    #: via the executor's warm world cache; iterations never write to it.
    world_cache_dir: str | None = None
    #: Simulated seconds between incremental autosaves.
    autosave_interval_s: float = 45.0
    #: Every Nth autosave is a save-all full flush (0 disables flushes).
    autosave_flush_every: int = 6
    #: Evict clean out-of-view chunks beyond this count (None: no cap).
    max_loaded_chunks: int | None = None

    # -- observability -----------------------------------------------------
    #: Tick-phase span tracing + slow-tick flight recorder.  Off by
    #: default; untraced runs are bit-identical with the pre-tracing
    #: simulation (the tracer hooks are no-ops).
    trace: bool = False
    #: Capture span trees on every Nth tick (1 = all).  The flight
    #: recorder watches every tick regardless of sampling.
    trace_sample_every: int = 1
    #: A tick is an anomaly when its wall duration exceeds this multiple
    #: of the 50 ms budget.
    slow_tick_factor: float = 3.0
    #: Serve a live pull-based metrics endpoint (Prometheus text +
    #: JSON snapshot) from ``repro serve`` and the campaign executor.
    #: Off by default; obs-off runs are bit-identical with the
    #: endpoint-less path (nothing is constructed, nothing polls).
    obs: bool = False
    #: TCP port the metrics endpoint binds (0 = OS-assigned ephemeral).
    obs_port: int = 0
    #: Seconds the endpoint keeps serving after the run finishes, so an
    #: in-flight scrape (or a final one) still lands.
    obs_scrape_grace: float = 0.0

    # -- reproducibility ------------------------------------------------------
    seed: int = 0
    #: Simulated idle seconds between iterations (teardown + setup).
    inter_iteration_gap_s: float = 20.0
    #: Start cloud machines with drained burst credits (warm VMs).
    warm_machines: bool = False
    #: Keep raw per-tick/per-sample lists (the figure pipeline needs
    #: them).  ``False`` runs with O(1) telemetry memory per metric —
    #: summaries and sidecar telemetry are streamed either way.
    retain_raw: bool = True

    def __post_init__(self) -> None:
        self.validate()

    # -- validation -------------------------------------------------------------

    def validate(self) -> None:
        """Raise ``ValueError`` on any invalid parameter combination."""
        if not self.servers:
            raise ValueError("at least one server (system under test) needed")
        for name in self.servers:
            get_variant(name)  # raises on unknown
        get_environment(self.environment)
        if self.world.lower() not in WORKLOADS:
            known = ", ".join(sorted(WORKLOADS))
            raise ValueError(
                f"unknown world workload {self.world!r}; known: {known}"
            )
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive: {self.duration_s!r}")
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1: {self.iterations!r}")
        if self.number_of_bots < 0:
            raise ValueError(f"bots must be >= 0: {self.number_of_bots!r}")
        if self.behavior.lower() not in BEHAVIORS:
            known = ", ".join(BEHAVIORS)
            raise ValueError(
                f"unknown behavior {self.behavior!r}; known: {known}"
            )
        if self.scale <= 0:
            raise ValueError(f"scale must be positive: {self.scale!r}")
        if self.ram_gb <= 0:
            raise ValueError(f"ram_gb must be positive: {self.ram_gb!r}")
        if self.autosave_interval_s <= 0:
            raise ValueError(
                f"autosave_interval_s must be positive: "
                f"{self.autosave_interval_s!r}"
            )
        if self.autosave_flush_every < 0:
            raise ValueError(
                f"autosave_flush_every must be >= 0: "
                f"{self.autosave_flush_every!r}"
            )
        if self.max_loaded_chunks is not None and self.max_loaded_chunks < 1:
            raise ValueError(
                f"max_loaded_chunks must be >= 1 (or None): "
                f"{self.max_loaded_chunks!r}"
            )
        if self.transport not in ("inproc", "tcp"):
            raise ValueError(
                f"unknown transport {self.transport!r}; "
                f"known: inproc, tcp"
            )
        if not 0 <= self.wire_port <= 65535:
            raise ValueError(
                f"wire_port must be 0..65535: {self.wire_port!r}"
            )
        if not 0 <= self.obs_port <= 65535:
            raise ValueError(
                f"obs_port must be 0..65535: {self.obs_port!r}"
            )
        if self.obs_scrape_grace < 0:
            raise ValueError(
                f"obs_scrape_grace must be >= 0: "
                f"{self.obs_scrape_grace!r}"
            )
        if self.trace_sample_every < 1:
            raise ValueError(
                f"trace_sample_every must be >= 1: "
                f"{self.trace_sample_every!r}"
            )
        if self.slow_tick_factor <= 0:
            raise ValueError(
                f"slow_tick_factor must be positive: "
                f"{self.slow_tick_factor!r}"
            )
        lo, hi = self.jmx_port_range
        if lo > hi:
            raise ValueError("jmx_port_range must be (low, high)")

    # -- serialization -------------------------------------------------------------

    def to_dict(self) -> dict:
        data = asdict(self)
        data["jmx_port_range"] = list(self.jmx_port_range)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "MeterstickConfig":
        payload = dict(data)
        if "jmx_port_range" in payload:
            payload["jmx_port_range"] = tuple(payload["jmx_port_range"])
        return cls(**payload)

    def iteration_seed(self, server: str, iteration: int) -> int:
        """Deterministic per-(server, iteration) seed.

        Uses CRC32 rather than ``hash()`` — Python string hashing is
        salted per process, which would make campaigns unreproducible
        across runs.
        """
        return stable_crc(self.seed, server, iteration)
