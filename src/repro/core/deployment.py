"""Deployment component (Fig. 5, #2): provision nodes from a config.

The real Meterstick deploys its components over SSH to any reachable IPs
(R7 portability).  The simulated equivalent materializes one node per
configured IP, assigns roles (one MLG node, the rest player-emulation
workers), installs the control clients, and hands the set to the Control
Server — exercising the same control-plane wiring.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.providers import Environment, get_environment
from repro.core.config import MeterstickConfig
from repro.core.controller import ControlClient, ControlServer, Transport

__all__ = ["Node", "Deployment"]


@dataclass
class Node:
    """One provisioned machine with its installed components."""

    ip: str
    role: str  # "M" (MLG) or "Y" (player emulation)
    environment: Environment
    installed: list[str] = field(default_factory=list)
    client: ControlClient | None = None


class Deployment:
    """Provisions nodes and wires up the controller."""

    #: Software bundles pushed to each role.
    MLG_BUNDLE = ("jre", "mlg-server", "metric-externalizer",
                  "system-metrics-collector", "control-client")
    EMULATION_BUNDLE = ("jre", "player-emulation", "control-client")

    def __init__(self, config: MeterstickConfig) -> None:
        if len(config.ips) < 2:
            raise ValueError(
                "deployment needs at least two IPs: one MLG node and one "
                "player-emulation worker"
            )
        self.config = config
        self.environment = get_environment(config.environment)
        self.nodes: list[Node] = []
        self.controller: ControlServer | None = None

    def deploy(self) -> ControlServer:
        """Provision all nodes; returns the ready Control Server."""
        controller = ControlServer()
        for index, ip in enumerate(self.config.ips):
            role = "M" if index == 0 else "Y"
            node = Node(ip=ip, role=role, environment=self.environment)
            bundle = (
                self.MLG_BUNDLE if role == "M" else self.EMULATION_BUNDLE
            )
            node.installed.extend(bundle)
            client = ControlClient(
                name=f"{role.lower()}-{ip}", role=role, transport=Transport()
            )
            node.client = client
            controller.register(client)
            self.nodes.append(node)
        self.controller = controller
        return controller

    @property
    def mlg_node(self) -> Node:
        self._require_deployed()
        return self.nodes[0]

    @property
    def emulation_nodes(self) -> list[Node]:
        self._require_deployed()
        return self.nodes[1:]

    def _require_deployed(self) -> None:
        if not self.nodes:
            raise RuntimeError("deploy() has not been called")
