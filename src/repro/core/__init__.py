"""Meterstick core: configuration, control plane, runner, collectors.

Public API::

    from repro.core import MeterstickConfig, ExperimentRunner, run_iteration
"""

from repro.core.collectors import (
    MetricExternalizer,
    SystemMetricsCollector,
    SystemSample,
    TickDistribution,
)
from repro.core.config import MeterstickConfig, stable_crc
from repro.core.controller import (
    ControlClient,
    ControlError,
    ControlServer,
    Transport,
)
from repro.core.deployment import Deployment, Node
from repro.core.experiment import (
    ExperimentRunner,
    run_iteration,
    run_server_chain,
)
from repro.core.messages import Message, MessageType
from repro.core.results import ExperimentResult, IterationResult
from repro.core.retrieval import retrieve, summary_rows
from repro.core.visualization import (
    ascii_boxplot,
    ascii_timeseries,
    format_table,
    write_csv_rows,
    write_csv_series,
)

__all__ = [
    "ControlClient",
    "ControlError",
    "ControlServer",
    "Deployment",
    "ExperimentResult",
    "ExperimentRunner",
    "IterationResult",
    "Message",
    "MessageType",
    "MeterstickConfig",
    "MetricExternalizer",
    "Node",
    "SystemMetricsCollector",
    "SystemSample",
    "TickDistribution",
    "Transport",
    "ascii_boxplot",
    "ascii_timeseries",
    "format_table",
    "retrieve",
    "run_iteration",
    "run_server_chain",
    "stable_crc",
    "summary_rows",
    "write_csv_rows",
    "write_csv_series",
]
