"""Control Server / Control Client (Fig. 5 components 3 and 4).

Meterstick follows a Controller/Worker pattern: the Control Server holds
the operation logic and synchronizes the workers by exchanging Table 1
messages with the Control Client on each node.  Here transports are
in-memory queues (the simulated SSH channels); the protocol logic —
sequencing, acknowledgements, error propagation, keepalives — is real and
unit-tested.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.messages import DESTINATIONS, Message, MessageType

__all__ = ["Transport", "ControlClient", "ControlServer", "ControlError"]


class ControlError(RuntimeError):
    """Raised by the controller when a worker reports ``err``."""


@dataclass
class Transport:
    """A bidirectional in-memory message channel."""

    to_worker: deque[Message] = field(default_factory=deque)
    to_controller: deque[Message] = field(default_factory=deque)

    def send_to_worker(self, message: Message) -> None:
        self.to_worker.append(message)

    def send_to_controller(self, message: Message) -> None:
        self.to_controller.append(message)


class ControlClient:
    """A worker-side protocol endpoint (role ``"Y"`` or ``"M"``).

    Handlers are callables keyed by message type; each returns an optional
    payload for the ``ok`` acknowledgement, or raises to produce ``err``.
    """

    def __init__(self, name: str, role: str, transport: Transport) -> None:
        if role not in ("Y", "M"):
            raise ValueError(f"role must be 'Y' or 'M', got {role!r}")
        self.name = name
        self.role = role
        self.transport = transport
        self.handlers: dict[str, Callable[[str], str | None]] = {}
        self.state: dict[str, str] = {}
        self.exited = False
        self._install_default_handlers()

    def _install_default_handlers(self) -> None:
        self.handlers[MessageType.SET_SERVER] = self._set_state("server")
        self.handlers[MessageType.SET_JMX] = self._set_state("jmx")
        self.handlers[MessageType.ITER] = self._set_state("iteration")
        self.handlers[MessageType.KEEP_ALIVE] = lambda payload: None

    def _set_state(self, key: str) -> Callable[[str], str | None]:
        def handler(payload: str) -> str | None:
            self.state[key] = payload
            return None

        return handler

    def on(self, message_type: str, handler: Callable[[str], str | None]) -> None:
        """Register a handler for a message type."""
        if message_type not in MessageType.ALL:
            raise ValueError(f"unknown message type {message_type!r}")
        self.handlers[message_type] = handler

    def process_one(self) -> bool:
        """Handle the next queued message; returns False when idle."""
        if not self.transport.to_worker:
            return False
        message = self.transport.to_worker.popleft()
        if self.role not in DESTINATIONS.get(message.type, frozenset()):
            self.transport.send_to_controller(
                Message(
                    MessageType.ERR,
                    f"{message.type} not valid for role {self.role}",
                    sender=self.name,
                )
            )
            return True
        if message.type == MessageType.EXIT:
            self.exited = True
            self.transport.send_to_controller(
                Message(MessageType.OK, sender=self.name)
            )
            return True
        handler = self.handlers.get(message.type)
        if handler is None:
            self.transport.send_to_controller(
                Message(
                    MessageType.ERR,
                    f"no handler for {message.type}",
                    sender=self.name,
                )
            )
            return True
        try:
            result = handler(message.payload)
        except Exception as exc:  # workers report, controllers decide
            self.transport.send_to_controller(
                Message(MessageType.ERR, str(exc), sender=self.name)
            )
            return True
        if message.type != MessageType.KEEP_ALIVE:
            self.transport.send_to_controller(
                Message(MessageType.OK, result or "", sender=self.name)
            )
        return True


class ControlServer:
    """The controller: sequences workers and awaits acknowledgements."""

    def __init__(self) -> None:
        self.workers: dict[str, ControlClient] = {}
        self.log: list[tuple[str, str]] = []

    def register(self, client: ControlClient) -> None:
        self.workers[client.name] = client

    def command(self, worker: str, message_type: str, payload: str = "") -> str:
        """Send one command and synchronously await its ``ok``.

        Raises :class:`ControlError` when the worker answers ``err``.
        """
        client = self.workers[worker]
        message = Message(message_type, payload)
        client.transport.send_to_worker(message)
        self.log.append((worker, message.encode()))
        client.process_one()
        if not client.transport.to_controller:
            raise ControlError(f"worker {worker} did not acknowledge")
        reply = client.transport.to_controller.popleft()
        if reply.type == MessageType.ERR:
            raise ControlError(f"{worker}: {reply.payload}")
        return reply.payload

    def broadcast(
        self, message_type: str, payload: str = "", roles: str = "YM"
    ) -> dict[str, str]:
        """Command every worker whose role is in ``roles``."""
        replies = {}
        for name, client in self.workers.items():
            if client.role in roles:
                replies[name] = self.command(name, message_type, payload)
        return replies

    def keep_alive_all(self) -> None:
        """No-op pings that keep the (simulated) TCP connections open."""
        for name, client in self.workers.items():
            message = Message(MessageType.KEEP_ALIVE)
            client.transport.send_to_worker(message)
            client.process_one()

    # -- the paper's experiment sequence --------------------------------------

    def run_iteration_sequence(
        self,
        server_name: str,
        iteration: int,
        mlg_worker: str,
        emulation_workers: list[str],
        jmx_url: str = "",
    ) -> None:
        """Drive one iteration's control flow (§3.2, Table 1 messages).

        set_server → set_jmx → iter → initialize → log_start → connect →
        (experiment runs) → log_stop → stop_server → convert.
        The actual measurement work is performed by the handlers the
        workers registered.
        """
        self.command(mlg_worker, MessageType.SET_SERVER, server_name)
        for worker in emulation_workers:
            self.command(worker, MessageType.SET_SERVER, server_name)
        if jmx_url:
            self.command(mlg_worker, MessageType.SET_JMX, jmx_url)
        self.command(mlg_worker, MessageType.ITER, str(iteration))
        for worker in emulation_workers:
            self.command(worker, MessageType.ITER, str(iteration))
        self.command(mlg_worker, MessageType.INITIALIZE)
        self.command(mlg_worker, MessageType.LOG_START)
        for worker in emulation_workers:
            self.command(worker, MessageType.CONNECT)
        self.command(mlg_worker, MessageType.LOG_STOP)
        self.command(mlg_worker, MessageType.STOP_SERVER)
        for worker in emulation_workers:
            self.command(worker, MessageType.CONVERT)

    def shutdown(self) -> None:
        """Send ``exit`` to every worker."""
        for name, client in self.workers.items():
            if not client.exited:
                self.command(name, MessageType.EXIT)
