"""The experiment runner: Meterstick's measurement loop.

Runs every configured server (system under test) for the configured number
of iterations of one workload in one environment, exactly as the paper's
controller sequences it: boot the server with the workload world, start
logging, connect the player emulation, run for the configured duration,
stop, collect.  Machines persist across iterations of the same server
(the deployment reuses nodes), with an idle gap between iterations during
which burstable credits accrue.
"""

from __future__ import annotations

import shutil
from collections.abc import Callable
from pathlib import Path

import numpy as np

from repro.cloud.providers import get_environment
from repro.core.collectors import MetricExternalizer, SystemMetricsCollector
from repro.core.config import MeterstickConfig
from repro.core.results import ExperimentResult, IterationResult
from repro.emulation.swarm import BotSwarm
from repro.mlg.server import MLGServer
from repro.simtime import SimClock, s_to_us
from repro.tracing.provenance import measurement_config, provenance_fingerprint
from repro.workloads import get_workload

__all__ = ["ExperimentRunner", "run_iteration", "run_server_chain"]

#: Per-iteration streaming callback for live campaign observability.
IterationFn = Callable[[IterationResult], None]


def run_iteration(
    workload_name: str,
    server_name: str,
    environment_name: str,
    duration_s: float = 60.0,
    seed: int = 0,
    scale: float = 1.0,
    n_bots: int = 25,
    behavior: str = "bounded-random",
    machine=None,
    clock: SimClock | None = None,
    iteration: int = 0,
    retain_raw: bool = True,
    world_dir: str | None = None,
    world_cache_dir: str | None = None,
    autosave_interval_s: float = 45.0,
    autosave_flush_every: int = 6,
    max_loaded_chunks: int | None = None,
    world_seed: int | None = None,
    trace: bool = False,
    trace_sample_every: int = 1,
    slow_tick_factor: float = 3.0,
    transport: str = "inproc",
    wire_port: int = 0,
    wire_batch_flush: bool = True,
    obs: bool = False,
    obs_port: int = 0,
    obs_scrape_grace: float = 0.0,
) -> IterationResult:
    """Run one iteration and return its measurements.

    ``machine``/``clock`` may be passed in to persist node state across
    iterations; fresh ones are created when omitted.  With
    ``retain_raw=False`` the raw per-tick and per-sample series are
    dropped as they stream through the telemetry layer: the result then
    carries only the O(1) telemetry snapshot (exact counts, moments,
    exceedance fractions, sketched quantiles, and the recent tail).

    The persistence knobs mirror :class:`MeterstickConfig`: ``world_dir``
    enables region-file autosave/reload, ``world_cache_dir`` warm-boots
    missing chunks from a read-only snapshot, ``max_loaded_chunks``
    bounds residency via eviction.  ``world_seed`` decouples the world's
    terrain seed from the iteration seed — a warm-cached campaign pins it
    to the campaign seed so every iteration boots the same world.
    """
    env = get_environment(environment_name)
    if machine is None:
        machine = env.create_machine(seed=seed)
    if clock is None:
        clock = SimClock()

    workload_kwargs = {}
    if workload_name.lower() == "players":
        workload_kwargs["n_bots"] = n_bots
        workload_kwargs["behavior"] = behavior
    workload = get_workload(workload_name, scale=scale, **workload_kwargs)
    world = workload.create_world(
        seed if world_seed is None else world_seed
    )
    server = MLGServer(
        server_name,
        machine,
        world=world,
        clock=clock,
        seed=seed,
        retain_raw=retain_raw,
        world_dir=world_dir,
        world_cache_dir=world_cache_dir,
        autosave_interval_s=autosave_interval_s,
        autosave_flush_every=autosave_flush_every,
        max_loaded_chunks=max_loaded_chunks,
        trace=trace,
        trace_sample_every=trace_sample_every,
        slow_tick_factor=slow_tick_factor,
        transport=transport,
        wire_port=wire_port,
        wire_batch_flush=wire_batch_flush,
        obs=obs,
        obs_port=obs_port,
        obs_scrape_grace=obs_scrape_grace,
    )
    rng = np.random.default_rng(seed ^ 0x5EED)
    swarm = BotSwarm(server, env.network, rng)
    workload.install(server, swarm)
    # With persistence in play, fingerprint the post-install world: warm
    # and cold boots of the same world seed must agree bit-for-bit.  The
    # hash covers the connect-time view: every workload connects at
    # least one zero-delay player inside ``install``, whose view load is
    # exactly the chunk set a warm boot serves from disk.
    initial_world_hash = None
    if server.lifecycle is not None:
        from repro.persistence.store import world_hash

        initial_world_hash = f"{world_hash(world):08x}"

    externalizer = MetricExternalizer(server)
    system = SystemMetricsCollector(server)

    server.start()
    deadline = clock.now_us + s_to_us(duration_s)
    while clock.now_us < deadline and server.running:
        server.tick()
        swarm.step()
        system.maybe_sample()
        if server.crashed:
            break
    server.running = False

    stats = server.net.stats
    n_share, b_share = stats.entity_share()
    # Bots streamed every probe through the tap as it completed; the raw
    # per-bot lists exist only when the server retained them.
    response_times = swarm.response_times_ms()
    telemetry = {
        "tick": server.telemetry.snapshot(include_tails=True),
        "system": system.snapshot(),
        "response_ms": server.telemetry.response_ms.snapshot(
            include_tail=False
        ),
    }
    if server.lifecycle is not None:
        telemetry["world"] = {
            "initial_hash": initial_world_hash,
            **server.lifecycle.stats(),
        }
    if server.tracer.enabled:
        # Span dumps use simulated time only, so the trace snapshot is
        # as deterministic as the run itself.
        telemetry["trace"] = server.tracer.snapshot()
    return IterationResult(
        server=server_name,
        workload=workload_name,
        environment=environment_name,
        iteration=iteration,
        seed=seed,
        duration_s=duration_s,
        tick_durations_ms=externalizer.tick_durations_ms() if retain_raw else [],
        response_times_ms=response_times,
        tick_distribution=externalizer.tick_distribution().shares,
        packet_counts=dict(stats.counts),
        packet_bytes=dict(stats.bytes_),
        entity_message_share=n_share,
        entity_byte_share=b_share,
        system_summary=system.summary(),
        crashed=server.crashed,
        crash_reason=server.crash_reason,
        throttled_ticks=machine.throttled_executions,
        final_credits_s=machine.credits_s,
        scale=scale,
        n_bots=n_bots,
        behavior=behavior,
        telemetry=telemetry,
    )


def run_server_chain(
    config: MeterstickConfig,
    server_name: str,
    on_iteration: IterationFn | None = None,
) -> list[IterationResult]:
    """Run every iteration of one server on one persistent machine.

    Iterations of a server chain share a machine and clock (the deployment
    reuses nodes), so they must stay ordered; distinct chains are
    independent and may run concurrently — this is the unit of work the
    campaign executor distributes across processes.

    ``on_iteration`` is called with each :class:`IterationResult` as soon
    as it finishes — the hook the campaign executor uses to stream
    per-iteration telemetry to disk while the chain is still running.
    """
    env = get_environment(config.environment)
    machine = env.create_machine(seed=config.iteration_seed(server_name, -1))
    if config.warm_machines:
        machine.drain_credits()
    clock = SimClock()
    # One provenance fingerprint per chain, attached to every iteration.
    # Deliberately timestamp-free and stripped of storage paths: shards
    # must stay byte-identical across serial/parallel runs and across
    # output directories (only the measurement conditions are stamped).
    provenance = provenance_fingerprint(
        measurement_config(config.to_dict()), extra={"server": server_name}
    )
    iterations: list[IterationResult] = []
    for iteration in range(config.iterations):
        seed = config.iteration_seed(server_name, iteration)
        # Live world directories are per (server, iteration): iterations
        # must not inherit each other's terrain mutations, and parallel
        # chains must not interleave region writes.  A leftover directory
        # from a killed attempt of this same iteration is wiped, so a
        # resumed job never boots from partially-simulated terrain.
        # (Direct `run_iteration(world_dir=...)` calls keep the opposite
        # behaviour on purpose: an existing world directory is a feature
        # — booting from a saved world.)
        world_dir = None
        if config.world_dir is not None:
            iteration_dir = (
                Path(config.world_dir) / server_name / f"iter{iteration:03d}"
            )
            if iteration_dir.exists():
                shutil.rmtree(iteration_dir)
            world_dir = str(iteration_dir)
        # Machine throttle counts are cumulative across the chain; bracket
        # the iteration to attribute only its own throttled executions.
        throttled_before = machine.throttled_executions
        iteration_result = run_iteration(
            workload_name=config.world,
            server_name=server_name,
            environment_name=config.environment,
            duration_s=config.duration_s,
            seed=seed,
            scale=config.scale,
            n_bots=config.number_of_bots,
            behavior=config.behavior,
            machine=machine,
            clock=clock,
            iteration=iteration,
            retain_raw=config.retain_raw,
            world_dir=world_dir,
            world_cache_dir=config.world_cache_dir,
            autosave_interval_s=config.autosave_interval_s,
            autosave_flush_every=config.autosave_flush_every,
            max_loaded_chunks=config.max_loaded_chunks,
            # A warm cache pins the terrain seed to the campaign seed so
            # every iteration/server boots the identical on-disk world.
            world_seed=(
                config.seed if config.world_cache_dir is not None else None
            ),
            trace=config.trace,
            trace_sample_every=config.trace_sample_every,
            slow_tick_factor=config.slow_tick_factor,
            transport=config.transport,
            wire_port=config.wire_port,
            wire_batch_flush=config.wire_batch_flush,
            obs=config.obs,
            obs_port=config.obs_port,
            obs_scrape_grace=config.obs_scrape_grace,
        )
        iteration_result.throttled_ticks = (
            machine.throttled_executions - throttled_before
        )
        iteration_result.provenance = dict(provenance)
        iterations.append(iteration_result)
        if on_iteration is not None:
            on_iteration(iteration_result)
        # Teardown/setup gap: the node idles, credits accrue.
        clock.advance(s_to_us(config.inter_iteration_gap_s))
    return iterations


class ExperimentRunner:
    """Executes a full :class:`MeterstickConfig` campaign."""

    def __init__(self, config: MeterstickConfig) -> None:
        self.config = config

    def run(self) -> ExperimentResult:
        """Run all servers × iterations; returns the collected results."""
        config = self.config
        result = ExperimentResult(config=config.to_dict())
        for server_name in config.servers:
            result.iterations.extend(run_server_chain(config, server_name))
        return result
