"""Flood workload: the fluid-dominated terrain-simulation scenario.

Two artifacts: the Figure-11-style tick-time distribution of the Flood
dam-break workload (Fluids must be the largest bucket — that is the
workload's reason to exist), and a micro-benchmark pinning that the
batched fluid engine beats the scalar reference by >=2x on a >=5k-cell
queue.
"""

import time

from conftest import DURATION_S, write_artifact

from repro.analysis.figures import run_cell
from repro.core.visualization import format_table
from repro.mlg.blocks import Block
from repro.mlg.fluids import FluidEngine
from repro.mlg.workreport import WorkReport
from repro.mlg.world import World

#: Micro-benchmark pool edge: a POOL_EDGE^2 sheet of sources gives the
#: fluid queue >= 5k cells from the first tick.
POOL_EDGE = 80
MICRO_TICKS = 10 * 5  # ten fluid ticks


def test_flood_fluids_dominate(benchmark, out_dir):
    cell = benchmark.pedantic(
        run_cell,
        args=("flood", "vanilla", "aws-t3.large", DURATION_S),
        rounds=1,
        iterations=1,
    )
    shares = cell.tick_distribution
    active = {
        bucket: share
        for bucket, share in shares.items()
        if not bucket.startswith("Wait")
    }
    rows = [
        [bucket, f"{100 * share:.1f}%"]
        for bucket, share in sorted(active.items(), key=lambda kv: -kv[1])
    ]
    text = format_table(["bucket", "share of non-wait tick time"], rows)
    text += (
        "\n\nexpected: the dam-break cascade makes Fluids the largest"
        " work bucket — the workload exercises the terrain-simulation"
        " path the other workloads leave cold."
    )
    write_artifact("flood_fluids_distribution.txt", text)
    assert max(active, key=active.get) == "Fluids", active


def _build_pool(batched: bool) -> FluidEngine:
    world = World()
    for cx in range(-1, (POOL_EDGE >> 4) + 2):
        for cz in range(-1, (POOL_EDGE >> 4) + 2):
            chunk = world.ensure_chunk(cx, cz)
            chunk.blocks[:, :, :40] = Block.STONE
            chunk.recompute_heightmap()
    fluids = FluidEngine(world, max_updates_per_tick=8192, batched=batched)
    for x in range(POOL_EDGE):
        for z in range(POOL_EDGE):
            world.set_block(x, 40, z, Block.WATER_SOURCE, log=False)
    return fluids


def _run_pool(batched: bool) -> tuple[float, float]:
    fluids = _build_pool(batched)
    report = WorkReport()
    elapsed = 0.0
    for tick in range(MICRO_TICKS):
        if tick % 5 == 0:
            # A sustained flood keeps the whole pool due every fluid
            # tick (the dam cycle re-wakes the basin the same way); the
            # re-seeding itself is identical for both paths and stays
            # outside the timed region.
            for x in range(POOL_EDGE):
                for z in range(POOL_EDGE):
                    fluids._schedule_water(x, 40, z)
            assert fluids.pending >= 5000
        start = time.perf_counter()
        fluids.tick(tick, report)
        elapsed += time.perf_counter() - start
    return elapsed, report.get("fluid")


def test_fluid_microbench_batched_2x(out_dir):
    scalar_s, scalar_ops = _run_pool(batched=False)
    batched_s, batched_ops = _run_pool(batched=True)
    speedup = scalar_s / batched_s
    text = format_table(
        ["path", "wall s", "fluid ops"],
        [
            ["scalar", f"{scalar_s:.3f}", f"{scalar_ops:.0f}"],
            ["batched", f"{batched_s:.3f}", f"{batched_ops:.0f}"],
            ["speedup", f"{speedup:.1f}x", ""],
        ],
    )
    write_artifact("flood_fluid_microbench.txt", text)
    # Both paths charge identical effective-update counts...
    assert scalar_ops == batched_ops
    # ...and the batched engine must be at least twice as fast on a
    # >=5k-cell queue (the acceptance floor; typical is far higher).
    assert speedup >= 2.0, f"batched speedup only {speedup:.2f}x"
