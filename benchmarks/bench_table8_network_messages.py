"""Table 8 / MF4: entity-related share of server-to-client traffic.

"Computation" = share of message count, "Communication" = share of bytes.
Paper shapes: entity updates dominate the message count (~90-97%) in every
configuration except PaperMC on Farm (47.5%, thanks to item merging and
batched entity sends), while contributing only a small share of the bytes
(chunk data dominates bytes).
"""

from conftest import DURATION_S, write_artifact

from repro.analysis import PAPER, table8_network_shares
from repro.core.visualization import format_table


def test_table8_network_messages(benchmark, out_dir):
    result = benchmark.pedantic(
        table8_network_shares,
        kwargs={"duration_s": DURATION_S},
        rounds=1,
        iterations=1,
    )
    expected = PAPER["table8"]
    rows = []
    for row in result.rows:
        paper_msg, paper_bytes = expected[(row["workload"], row["server"])]
        rows.append(
            [
                row["server"],
                row["workload"],
                f"{row['message_share_pct']:.1f}",
                f"{paper_msg:.1f}",
                f"{row['byte_share_pct']:.1f}",
                f"{paper_bytes:.1f}",
            ]
        )
    text = format_table(
        [
            "server",
            "workload",
            "msgs% (ours)",
            "msgs% (paper)",
            "bytes% (ours)",
            "bytes% (paper)",
        ],
        rows,
    )
    write_artifact("table8_network_messages.txt", text)

    cells = {(r["workload"], r["server"]): r for r in result.rows}

    # Entity messages dominate the count everywhere except PaperMC/Farm.
    for (workload, server), row in cells.items():
        if (workload, server) == ("farm", "papermc"):
            continue
        assert row["message_share_pct"] > 60.0, (workload, server, row)

    # PaperMC's Farm share drops below vanilla's (item merging + batched
    # entity sends).  The paper measures a much larger gap (47.5% vs
    # 91.7%); our simulator reproduces the direction, not the magnitude —
    # recorded as a known deviation in EXPERIMENTS.md.
    papermc_farm = cells[("farm", "papermc")]
    vanilla_farm = cells[("farm", "vanilla")]
    assert papermc_farm["message_share_pct"] < vanilla_farm[
        "message_share_pct"
    ]
    # Per workload, PaperMC always sends the smallest entity share.
    for workload in ("control", "farm", "tnt"):
        assert cells[(workload, "papermc")]["message_share_pct"] == min(
            cells[(workload, s)]["message_share_pct"]
            for s in ("vanilla", "forge", "papermc")
        ), workload

    # Bytes are dominated by non-entity traffic (chunk data) everywhere:
    # the byte share sits far below the message share.
    for (workload, server), row in cells.items():
        assert row["byte_share_pct"] < 0.55 * row["message_share_pct"], (
            workload,
            server,
            row,
        )

    # PaperMC sends a smaller entity byte share on the steady workloads
    # (under TNT its faster ticks advance the chain further, which evens
    # the byte comparison out — a simulator artifact noted in
    # EXPERIMENTS.md).
    for workload in ("control", "farm"):
        assert (
            cells[(workload, "papermc")]["byte_share_pct"]
            <= cells[(workload, "vanilla")]["byte_share_pct"] + 1.0
        )
