"""Figure 1: Minecraft response time in the AWS cloud (Control vs Farm).

The paper's opening result: even with a single connected player, response
time varies from good (< 60 ms) to unplayable (> 118 ms) once the Farm
world's simulated constructs are running.
"""

from conftest import DURATION_S, write_artifact

from repro.analysis import PAPER, fig1_response_time
from repro.core.visualization import format_table
from repro.metrics import NOTICEABLE_MS, UNPLAYABLE_MS


def test_fig1_response_time(benchmark, out_dir):
    result = benchmark.pedantic(
        fig1_response_time,
        kwargs={"duration_s": DURATION_S},
        rounds=1,
        iterations=1,
    )
    rows = []
    for row in result.rows:
        rows.append(
            [
                row["workload"],
                f"{row['median_ms']:.1f}",
                f"{row['p95_ms']:.1f}",
                f"{row['max_ms']:.1f}",
                f"{100 * row['frac_noticeable']:.1f}%",
                f"{100 * row['frac_unplayable']:.1f}%",
            ]
        )
    text = format_table(
        ["workload", "median ms", "p95 ms", "max ms", ">60ms", ">118ms"],
        rows,
    )
    text += (
        f"\n\npaper: Control stays below the noticeable line ({NOTICEABLE_MS}"
        f" ms) while Farm pushes response time toward/past unplayable "
        f"({UNPLAYABLE_MS} ms)."
    )
    write_artifact("fig01_response_time.txt", text)

    control, farm = result.rows
    # Shape: the Farm workload degrades response time vs Control.
    assert farm["median_ms"] > control["median_ms"]
    assert farm["p95_ms"] > control["p95_ms"]
    # Control's typical response is playable; Farm exceeds noticeable
    # for a visible fraction of actions.
    assert control["median_ms"] < UNPLAYABLE_MS
    assert farm["frac_noticeable"] > control["frac_noticeable"]
