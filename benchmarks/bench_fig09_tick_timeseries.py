"""Figure 9: tick time over time on AWS (Control, Farm, TNT, Players).

Reproduces the time-series shapes: stable Control curves, high-frequency
Farm oscillation around the 50 ms line, TNT's huge low-frequency spikes
(2500+ ms for Minecraft/Forge), and PaperMC mostly under the threshold.
"""

import numpy as np
from conftest import DURATION_S, write_artifact

from repro.analysis import PAPER, fig9_tick_timeseries
from repro.core.visualization import ascii_timeseries, format_table


def test_fig9_tick_timeseries(benchmark, out_dir):
    result = benchmark.pedantic(
        fig9_tick_timeseries,
        kwargs={"duration_s": max(DURATION_S, 60.0)},
        rounds=1,
        iterations=1,
    )
    lines = []
    summary_rows = []
    for row in result.rows:
        label = f"{row['workload']}/{row['server']}"
        lines.append(
            f"{label:20s} {ascii_timeseries(row['series'], width=70, height_label='ms')}"
        )
        summary_rows.append(
            [
                row["workload"],
                row["server"],
                f"{row['peak_ms']:.0f}",
                f"{100 * row['overloaded_fraction']:.1f}%",
            ]
        )
    text = "\n".join(lines)
    text += "\n\n" + format_table(
        ["workload", "server", "peak ms", ">50ms ticks"], summary_rows
    )
    text += "\n\npaper: TNT exceeds 2500 ms for Minecraft and Forge; PaperMC"
    text += " tick durations frequently below 50 ms on Farm and TNT."
    write_artifact("fig09_tick_timeseries.txt", text)

    cells = {(r["workload"], r["server"]): r for r in result.rows}

    # TNT spikes reach the thousands of ms for vanilla/forge.
    assert cells[("tnt", "vanilla")]["peak_ms"] > 1000.0
    assert cells[("tnt", "forge")]["peak_ms"] > 1000.0
    # PaperMC stays mostly under the budget on Farm and TNT.
    assert cells[("farm", "papermc")]["overloaded_fraction"] < 0.35
    assert (
        cells[("tnt", "papermc")]["peak_ms"]
        < 0.4 * cells[("tnt", "vanilla")]["peak_ms"]
    )
    # Control is the calmest workload for every server (comparing steady
    # state, past the shared connect-time spike).
    for server in ("vanilla", "forge", "papermc"):
        assert (
            cells[("control", server)]["overloaded_fraction"]
            <= cells[("farm", server)]["overloaded_fraction"] + 0.02
        )
        assert (
            cells[("control", server)]["steady_peak_ms"]
            <= cells[("tnt", server)]["steady_peak_ms"]
        )
