"""Tables 2, 6, and 7: workload worlds, metric comparison, hosting plans.

Table 2: the four workload worlds and their loaded sizes.  Table 6: ISR vs
standard deviation / Allan variance / jitter on traces that expose order
dependence and normalization.  Table 7: the hosting-recommendation survey.
"""

import numpy as np
import pytest
from conftest import write_artifact

from repro.analysis import PAPER
from repro.analysis.hosting import HOSTING_PLANS, most_common_recommendation
from repro.core.visualization import format_table
from repro.metrics import (
    allan_variance,
    clustered_outlier_trace,
    instability_ratio,
    rfc3550_jitter,
    spread_outlier_trace,
)
from repro.workloads import get_workload


def _build_worlds():
    """Build each workload world and measure its loaded footprint."""
    rows = []
    for name in ("control", "tnt", "farm", "lag"):
        workload = get_workload(name)
        world = workload.create_world(seed=7)
        # Touch the observer's spawn area so sizes are comparable.
        for cx in range(-2, 3):
            for cz in range(-2, 3):
                world.ensure_chunk(cx, cz)
        rows.append(
            {
                "workload": workload.display_name,
                "size_mb": workload.world_size_mb(world),
                "description": workload.description,
            }
        )
    return rows


def test_table2_workload_worlds(benchmark, out_dir):
    rows = benchmark.pedantic(_build_worlds, rounds=1, iterations=1)
    text = format_table(
        ["world", "loaded size MB", "properties"],
        [
            [r["workload"], f"{r['size_mb']:.1f}", r["description"]]
            for r in rows
        ],
    )
    text += "\n\npaper sizes (on-disk, MB): Control 5.4, TNT 6.3, Farm 26.0,"
    text += " Lag 4.7 (ours are in-memory chunk footprints)."
    write_artifact("table2_worlds.txt", text)
    names = {r["workload"] for r in rows}
    assert names == set(PAPER["table2"]["worlds"])
    for row in rows:
        assert row["size_mb"] > 0.0


def _metric_comparison():
    """Table 6's property demonstration on synthetic traces."""
    budget = 50.0
    clustered = clustered_outlier_trace(1000, 5, 20.0)
    spread = spread_outlier_trace(1000, 5, 20.0)
    return {
        "std_clustered": float(np.std(clustered)),
        "std_spread": float(np.std(spread)),
        "allan_clustered": allan_variance(list(clustered)),
        "allan_spread": allan_variance(list(spread)),
        "jitter_clustered": rfc3550_jitter(list(clustered)),
        "jitter_spread": rfc3550_jitter(list(spread)),
        "isr_clustered": instability_ratio(clustered, budget),
        "isr_spread": instability_ratio(spread, budget),
    }


def test_table6_metric_comparison(benchmark, out_dir):
    metrics = benchmark.pedantic(_metric_comparison, rounds=1, iterations=1)
    text = format_table(
        ["metric", "clustered outliers", "spread outliers", "order dep.?"],
        [
            [
                "std dev",
                f"{metrics['std_clustered']:.2f}",
                f"{metrics['std_spread']:.2f}",
                "no",
            ],
            [
                "Allan variance",
                f"{metrics['allan_clustered']:.1f}",
                f"{metrics['allan_spread']:.1f}",
                "yes",
            ],
            [
                "RFC3550 jitter",
                f"{metrics['jitter_clustered']:.2f}",
                f"{metrics['jitter_spread']:.2f}",
                "yes (not normalized)",
            ],
            [
                "ISR",
                f"{metrics['isr_clustered']:.4f}",
                f"{metrics['isr_spread']:.4f}",
                "yes (normalized)",
            ],
        ],
    )
    write_artifact("table6_metric_comparison.txt", text)
    # Standard deviation cannot tell the traces apart; the others can.
    assert metrics["std_clustered"] == pytest.approx(metrics["std_spread"])
    assert metrics["allan_spread"] > metrics["allan_clustered"]
    assert metrics["isr_spread"] > 4 * metrics["isr_clustered"]
    # ISR is normalized to [0, 1]; jitter is in milliseconds.
    assert 0.0 <= metrics["isr_spread"] <= 1.0


def test_table7_hosting_recommendations(benchmark, out_dir):
    ram, vcpus = benchmark.pedantic(
        most_common_recommendation, rounds=1, iterations=1
    )
    text = format_table(
        ["service", "RAM GB", "vCPUs", "GHz"],
        [
            [
                plan.service,
                plan.ram_gb if plan.ram_gb is not None else "NP",
                plan.vcpus if plan.vcpus is not None else "NP",
                plan.cpu_speed_ghz if plan.cpu_speed_ghz is not None else "NP",
            ]
            for plan in HOSTING_PLANS
        ],
    )
    text += f"\n\nmost common recommendation: {vcpus} vCPU / {ram:.0f} GB"
    write_artifact("table7_hosting.txt", text)
    assert ram == PAPER["table7"]["common_ram_gb"]
    assert vcpus == PAPER["table7"]["common_vcpus"]
    assert len(HOSTING_PLANS) == 23
