"""Wire-path cost: codec throughput and loopback TCP round trips.

Two artifacts:

* raw codec throughput — encode and decode rates (messages/s, MB/s)
  over a traffic mix matching what ``WireServer`` actually flushes
  (state frames weighted toward entity moves, per-client deliveries,
  client actions, and batched entity moves),
* a real loopback campaign cell (``serve_cell`` + ``run_clients`` over
  127.0.0.1 sockets) reporting client-measured response times and the
  bytes the server pushed.

Both land in ``benchmarks/out/bench_wire.txt`` and one ``wire_bench``
record is appended to ``benchmarks/out/perf_history.jsonl`` so the
campaign report's perf-trajectory panel picks the wire path up alongside
the figure gates.
"""

import json
import threading
import time

import numpy as np
from conftest import OUT_DIR, write_artifact

from repro.campaign.store import JobStore
from repro.core.visualization import format_table
from repro.mlg import wirecodec as wc
from repro.mlg.protocol import PACKET_SIZES, ActionKind, PacketCategory, PlayerAction
from repro.net import run_clients, serve_cell
from repro.tracing.perf_baseline import append_history, history_entry

#: Messages per codec rep — large enough that interpreter startup noise
#: washes out, small enough to keep the bench interactive.
CODEC_MESSAGES = 20_000
CODEC_REPS = 3

#: Loopback cell shape (simulated seconds; wall time tracks it 1:1
#: because the serve loop paces ticks against the tick budget).
RTT_BOTS = 4
RTT_DURATION_S = 2.0

#: State-frame traffic mix, roughly the per-tick composition the server
#: flushes for a small bot fleet (entity moves dominate).
STATE_MIX = (
    (PacketCategory.ENTITY_MOVE, 12),
    (PacketCategory.ENTITY_VELOCITY, 4),
    (PacketCategory.BLOCK_CHANGE, 2),
    (PacketCategory.SOUND_EFFECT, 1),
    (PacketCategory.CHAT, 1),
    (PacketCategory.KEEPALIVE, 1),
    (PacketCategory.TIME_UPDATE, 1),
)


def _traffic(rng) -> bytes:
    """One encode pass over the mixed traffic; returns the wire bytes."""
    buf = bytearray()
    categories = [c for c, weight in STATE_MIX for _ in range(weight)]
    for i in range(CODEC_MESSAGES):
        pick = i % (len(categories) + 2)
        if pick < len(categories):
            category = categories[pick]
            schema = wc.CATEGORY_SCHEMAS[category]
            payload = tuple(
                int(rng.integers(0, 128)) if tag in ("uv", "u8")
                else int(rng.integers(-64, 64)) if tag == "sv"
                else float(np.float32(rng.uniform(-100, 100)))
                if tag == "f32"
                else float(rng.uniform(-100, 100))
                for tag in schema
            )
            if i % 2:
                buf += wc.encode_state(category, payload)
            else:
                buf += wc.encode_delivery(
                    category, payload, int(rng.integers(0, 1 << 20))
                )
        elif pick == len(categories):
            action = PlayerAction(
                ActionKind.MOVE,
                int(rng.integers(1, 64)),
                (
                    float(rng.uniform(0, 32)),
                    float(rng.uniform(1, 8)),
                    float(rng.uniform(0, 32)),
                ),
            )
            buf += wc.encode_action(action, int(rng.integers(0, 1 << 20)))
        else:
            moves = tuple(
                (eid, int(rng.integers(-8, 9)), 0, int(rng.integers(-8, 9)))
                for eid in range(1, 17)
            )
            buf += wc.encode_entity_batch(moves)
    return bytes(buf)


def test_codec_throughput(benchmark, out_dir):
    """Encode/decode rates over the server's flush-traffic mix."""

    def reps():
        encode_s, decode_s, wire = [], [], b""
        for rep in range(CODEC_REPS):
            rng = np.random.default_rng(2022 + rep)
            t0 = time.perf_counter()
            wire = _traffic(rng)
            encode_s.append(time.perf_counter() - t0)
            decoder = wc.FrameDecoder()
            t0 = time.perf_counter()
            decoded = decoder.feed(wire)
            decode_s.append(time.perf_counter() - t0)
            assert len(decoded) == CODEC_MESSAGES
            assert decoder.pending_bytes == 0
        return min(encode_s), min(decode_s), wire

    encode_s, decode_s, wire = benchmark.pedantic(
        reps, rounds=1, iterations=1
    )
    mb = len(wire) / 1e6
    rows = [
        ["messages per rep", f"{CODEC_MESSAGES}"],
        ["wire bytes per rep", f"{mb:.2f} MB"],
        ["mean frame", f"{len(wire) / CODEC_MESSAGES:.1f} B"],
        ["encode (min of reps)",
         f"{CODEC_MESSAGES / encode_s / 1e3:.0f} kmsg/s"
         f"  ({mb / encode_s:.1f} MB/s)"],
        ["decode (min of reps)",
         f"{CODEC_MESSAGES / decode_s / 1e3:.0f} kmsg/s"
         f"  ({mb / decode_s:.1f} MB/s)"],
    ]
    text = format_table(["metric", "value"], rows)
    text += (
        "\n\npure-python codec; the size contract (frames padded to the"
        " Table 8 model) means throughput in MB/s overstates useful"
        " payload by design."
    )
    write_artifact("bench_wire_codec.txt", text)
    _record_history("codec", {"current_s": round(encode_s + decode_s, 4)})


def test_loopback_rtt(benchmark, out_dir, tmp_path):
    """Serve one tcp cell and measure client-side response times."""
    out = tmp_path / "campaign"
    spec_path = tmp_path / "wire.yaml"
    spec_path.write_text(
        json.dumps(
            {
                "name": "wire-bench",
                "servers": ["vanilla"],
                "workloads": ["players"],
                "environments": ["das5"],
                "bot_counts": [RTT_BOTS],
                "iterations": 1,
                "duration_s": RTT_DURATION_S,
                "seed": 11,
                "transport": "tcp",
                "output_dir": str(out),
            }
        )
    )

    def loopback():
        listening = threading.Event()
        box = {}

        def on_listen(port):
            box["port"] = port
            listening.set()

        thread = threading.Thread(
            target=lambda: box.update(
                serve=serve_cell(spec_path, cell=0, on_listen=on_listen)
            )
        )
        thread.start()
        assert listening.wait(30)
        box["clients"] = run_clients(
            "127.0.0.1", box["port"], RTT_BOTS, stagger_s=0.05, seed=11
        )
        thread.join(60)
        assert not thread.is_alive()
        return box

    t0 = time.perf_counter()
    box = benchmark.pedantic(loopback, rounds=1, iterations=1)
    wall_s = time.perf_counter() - t0
    clients = box["clients"]
    store = JobStore(out)
    line = store.read_job_telemetry(box["serve"]["job_id"])[0]
    wire = line["telemetry"]["wire"]

    rows = [
        ["clients", f"{clients['connected']} / {RTT_BOTS}"],
        ["cell duration", f"{RTT_DURATION_S:.1f} sim-s"
         f"  ({wall_s:.1f} s wall)"],
        ["ticks seen", f"{clients['ticks_seen']}"],
        ["response samples", f"{clients['samples']}"],
        ["response p50", f"{clients['response_p50_ms']:.1f} ms"],
        ["response p99", f"{clients['response_p99_ms']:.1f} ms"],
        ["server bytes out", f"{wire['wire_bytes_out']['total'] / 1e6:.2f} MB"],
        ["server bytes in", f"{wire['wire_bytes_in']['total'] / 1e3:.1f} kB"],
        ["flush p99", f"{wire['wire_flush_us']['p99']:.0f} µs"],
    ]
    text = format_table(["metric", "value"], rows)
    text += (
        "\n\nresponse times are measured on the client side of real"
        " sockets and streamed back as telemetry; p50 should sit near"
        " the simulated network+queue latency, not the loopback RTT."
    )
    write_artifact("bench_wire_loopback.txt", text)
    assert clients["connected"] == RTT_BOTS
    assert clients["samples"] > 0
    _record_history("loopback", {"current_s": round(wall_s, 4)})


def _record_history(which: str, extra: dict) -> None:
    rows = [
        {
            "figure": f"benchmarks/bench_wire.py::{which}",
            "baseline_s": None,
            "budget_s": None,
            "current_s": extra["current_s"],
            "status": "ok",
        }
    ]
    entry = history_entry(
        kind="wire_bench",
        status="ok",
        rows=rows,
        machine_factor=1.0,
        tolerance=0.0,
    )
    append_history(OUT_DIR / "perf_history.jsonl", entry)
