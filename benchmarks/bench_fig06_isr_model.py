"""Figure 6: numerical analysis of the Instability Ratio.

6a: ISR as a function of outlier period (lambda) for s in {2, 10, 20} —
closed form vs measured on synthetic traces.  6b: two traces with identical
distributions but different order, an order of magnitude apart in ISR.
"""

from conftest import write_artifact

from repro.analysis import PAPER, fig6_isr_model
from repro.core.visualization import format_table


def test_fig6_isr_model(benchmark, out_dir):
    result = benchmark.pedantic(fig6_isr_model, rounds=1, iterations=1)

    curve_rows = [r for r in result.rows if "s" in r]
    trace_row = next(r for r in result.rows if r.get("trace") == "fig6b")

    rows = []
    for row in curve_rows:
        closed = row["closed_form"]
        rows.append(
            [
                f"s={row['s']}",
                f"{closed[1]:.3f}",  # lam=2
                f"{closed[9]:.3f}",  # lam=10
                f"{closed[24]:.3f}",  # lam=25
                f"{closed[99]:.3f}",  # lam=100
            ]
        )
    text = format_table(
        ["curve", "ISR@lam=2", "lam=10", "lam=25", "lam=100"], rows
    )
    text += (
        f"\n\nfig6b (order dependence): low ISR = {trace_row['low_isr']:.4f},"
        f" high ISR = {trace_row['high_isr']:.4f}"
        f" (paper prints 0.009 / 0.15; its own Eq.1 model gives"
        f" ~0.017 / ~0.087 — we match the model and the magnitude gap)"
    )
    write_artifact("fig06_isr_model.txt", text)

    # Paper §4.2: s=10 every 25 ticks -> ISR = 0.26.
    s10 = next(r for r in curve_rows if r["s"] == 10)
    assert abs(s10["closed_form"][24] - PAPER["fig6"]["isr_s10_lam25"]) < 0.01
    # Spot measurements match the closed form.
    for row in curve_rows:
        for measured, lam in zip(row["spot_measured"], (2, 10, 25, 50, 100)):
            from repro.metrics import isr_closed_form

            assert abs(measured - isr_closed_form(row["s"], lam)) < 0.02
    # 6b: same distribution, ISR at least ~5x apart.
    assert trace_row["identical_distribution"]
    assert trace_row["high_isr"] > 4 * trace_row["low_isr"]
