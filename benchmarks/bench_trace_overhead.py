"""Tracer cost and trace artifacts: what observability itself costs.

Two artifacts:

* the tick-loop overhead of full-rate tracing (``trace_sample_every=1``)
  versus the default ``trace=False`` path, measured as paired
  same-seed iterations — plus a check that tracing never perturbs the
  measurement (bit-identical tick records either way),
* a complete traced mini-campaign exported to Chrome trace-event JSON
  and collated flight-recorder anomalies under ``benchmarks/out/trace/``
  (uploaded from CI as the ``benchmark-trace`` artifact, so every PR
  ships a Perfetto-loadable trace of the current tick loop), plus the
  same campaign's self-contained HTML report rendered from its sidecars
  into ``benchmarks/out/report/`` (the ``benchmark-report`` artifact).
"""

import json
import time

from conftest import OUT_DIR, write_artifact

from repro.campaign.executor import CampaignExecutor
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import JobStore
from repro.core.experiment import run_iteration
from repro.core.visualization import format_table
from repro.reporting.dataset import load_dataset
from repro.reporting.html import write_report
from repro.tracing.chrome import render_campaign_trace

TRACE_DIR = OUT_DIR / "trace"
REPORT_DIR = OUT_DIR / "report"

#: Paired-run duration (simulated seconds) for the overhead measurement.
OVERHEAD_DURATION_S = 8.0
OVERHEAD_REPS = 3


def _run(trace: bool) -> tuple[float, object]:
    t0 = time.perf_counter()
    result = run_iteration(
        "players",
        "vanilla",
        "das5-2core",
        duration_s=OVERHEAD_DURATION_S,
        seed=17,
        trace=trace,
        trace_sample_every=1,
    )
    return time.perf_counter() - t0, result


def test_trace_overhead(benchmark, out_dir):
    """Full-rate tracing stays a small tax on the tick loop and leaves
    the measurement itself untouched."""

    def paired():
        off = [_run(False) for _ in range(OVERHEAD_REPS)]
        on = [_run(True) for _ in range(OVERHEAD_REPS)]
        return off, on

    off, on = benchmark.pedantic(paired, rounds=1, iterations=1)
    # min-of-reps: the scheduler can only ever make a run slower.
    off_s = min(wall for wall, _ in off)
    on_s = min(wall for wall, _ in on)
    overhead = 100.0 * (on_s - off_s) / off_s

    base, traced = off[0][1], on[0][1]
    identical = (
        base.tick_durations_ms == traced.tick_durations_ms
        and base.tick_distribution == traced.tick_distribution
    )
    trace_snapshot = traced.telemetry["trace"]

    rows = [
        ["trace=False wall (min of reps)", f"{off_s:.3f} s"],
        ["trace=True  wall (min of reps)", f"{on_s:.3f} s"],
        ["overhead", f"{overhead:+.1f}%"],
        ["ticks sampled", f"{trace_snapshot['ticks_sampled']}"],
        ["phase accumulators", f"{len(trace_snapshot['phases'])}"],
        ["tick records bit-identical", f"{identical}"],
    ]
    text = format_table(["metric", "value"], rows)
    text += (
        "\n\nexpected: single-digit-% overhead at full sampling;"
        " identical tick records — the tracer observes simulated cost,"
        " it never prices its own bookkeeping."
    )
    write_artifact("trace_overhead.txt", text)
    assert identical, "tracing perturbed the measurement"
    assert trace_snapshot["ticks_sampled"] > 0


def test_traced_campaign_trace_artifacts(benchmark, out_dir, tmp_path):
    """Run a tiny traced campaign end to end and export its Chrome trace
    plus collated flight-recorder anomalies for the CI artifact upload."""
    spec = CampaignSpec(
        name="trace-smoke",
        servers=["vanilla", "paper"],
        workloads=["players"],
        iterations=2,
        duration_s=4.0,
        seed=3,
        inter_iteration_gap_s=0.0,
        trace=True,
        # Well below any real threshold: every moderately slow tick trips
        # the flight recorder, so the anomaly artifact is never empty.
        slow_tick_factor=0.5,
        output_dir=str(tmp_path / "campaign"),
    )
    store = JobStore(spec.output_dir)
    benchmark.pedantic(
        CampaignExecutor(spec, store=store).run, rounds=1, iterations=1
    )

    manifest = store.read_manifest()
    trace = render_campaign_trace(
        store, provenance=manifest.get("provenance")
    )
    TRACE_DIR.mkdir(parents=True, exist_ok=True)
    trace_path = TRACE_DIR / "trace.json"
    trace_path.write_text(json.dumps(trace))
    anomalies = [
        json.dumps(dump, sort_keys=True)
        for job in sorted(store.manifest_jobs(), key=lambda j: j.index)
        for dump in store.read_job_anomalies(job.job_id)
    ]
    anomalies_path = TRACE_DIR / "anomalies.jsonl"
    anomalies_path.write_text(
        "\n".join(anomalies) + "\n" if anomalies else ""
    )

    # Render the same campaign's HTML report from its sidecars (default
    # output: section; the trajectory panel reads the committed baseline
    # and perf history next to this file).
    dataset = load_dataset(store, bench_dir=OUT_DIR.parent)
    written = write_report(dataset, out_dir=REPORT_DIR)
    report_html = written["html"].read_text()

    events = trace["traceEvents"]
    kinds = sorted({event["ph"] for event in events})
    rows = [
        ["jobs traced",
         f"{trace['otherData']['traced_jobs']}"
         f" / {trace['otherData']['jobs']}"],
        ["iterations traced", f"{trace['otherData']['traced_iterations']}"],
        ["trace events", f"{len(events)}"],
        ["event kinds", ", ".join(kinds)],
        ["anomaly dumps", f"{len(anomalies)}"],
        ["trace.json", f"{trace_path.stat().st_size / 1e3:.0f} kB"],
        ["report.html",
         f"{written['html'].stat().st_size / 1e3:.0f} kB"],
    ]
    text = format_table(["metric", "value"], rows)
    text += (
        "\n\nload benchmarks/out/trace/trace.json in Perfetto"
        " (ui.perfetto.dev) — one process per job, one track per"
        " tick-phase, jobs bracketed as async spans."
    )
    write_artifact("trace_campaign_export.txt", text)
    assert trace["otherData"]["traced_jobs"] == 2
    assert {"M", "X", "b", "e"} <= set(kinds)
    assert anomalies, "slow_tick_factor=0.5 should trip the recorder"
    assert "<svg" in report_html
    assert 'class="banner' in report_html
    assert (REPORT_DIR / "report_grid.csv").exists()
