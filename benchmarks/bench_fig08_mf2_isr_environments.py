"""Figure 8 / MF2: environment-based workloads cause significant
performance variability.

ISR for every (MLG, workload) pair on AWS 2-core, DAS-5 2-core, and DAS-5
16-core.  Paper shapes: Farm/TNT/Lag above Control for every game in every
environment (except PaperMC on AWS staying low), the Lag workload in the
0.85-1.0 band on DAS-5, and all three games crashing under Lag on AWS.
"""

from conftest import DURATION_S, write_artifact

from repro.analysis import PAPER, fig8_isr_grid
from repro.core.visualization import format_table


def test_fig8_mf2_isr_grid(benchmark, out_dir):
    result = benchmark.pedantic(
        fig8_isr_grid,
        kwargs={"duration_s": max(DURATION_S, 60.0)},
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            r["environment"],
            r["workload"],
            r["server"],
            "CRASH" if r["crashed"] else f"{r['isr']:.4f}",
            f"{r['tick_mean_ms']:.1f}",
            f"{r['tick_max_ms']:.0f}",
        ]
        for r in result.rows
    ]
    text = format_table(
        ["environment", "workload", "server", "ISR", "tick mean", "tick max"],
        rows,
    )
    text += (
        "\n\npaper: env workloads raise ISR by 0.04..0.92; Lag sits in the "
        "0.85-1.00 band on DAS-5 and crashes all three MLGs on AWS; "
        "overload reaches ~58x the 50 ms budget."
    )
    write_artifact("fig08_mf2_isr_grid.txt", text)

    cells = {
        (r["environment"], r["workload"], r["server"]): r for r in result.rows
    }

    # Lag crashes all three MLGs on AWS (the paper's missing data points).
    for server in ("vanilla", "forge", "papermc"):
        assert cells[("aws-t3.large", "lag", server)]["crashed"], server

    # Lag is stable but extremely unstable-ISR on DAS-5.
    lo, hi = PAPER["fig8"]["lag_isr_band_das5"]
    for environment in ("das5-2core", "das5-16core"):
        for server in ("vanilla", "forge", "papermc"):
            cell = cells[(environment, "lag", server)]
            assert not cell["crashed"], (environment, server)
            assert lo - 0.08 <= cell["isr"] <= hi, (environment, server, cell)

    # Environment workloads (farm, tnt) beat Control's ISR for
    # vanilla/forge everywhere; PaperMC's TNT/Farm optimizations keep it
    # low on AWS (the paper's exception).
    for environment in ("das5-2core", "aws-t3.large"):
        for server in ("vanilla", "forge"):
            control_isr = cells[(environment, "control", server)]["isr"]
            for workload in ("farm", "tnt"):
                assert (
                    cells[(environment, workload, server)]["isr"]
                    > control_isr
                ), (environment, workload, server)

    # Overload factor: TNT peaks tens of times the 50 ms budget on AWS.
    vanilla_tnt = cells[("aws-t3.large", "tnt", "vanilla")]
    assert vanilla_tnt["tick_max_ms"] > 20 * 50.0
