"""Figure 12 / MF5: recommended hardware is insufficient.

Tick-time distribution and ISR for the TNT workload on AWS t3.large (L),
t3.xlarge (XL), and t3.2xlarge (2XL).  Paper shapes: L is badly overloaded;
XL improves but vanilla/forge means stay above the 50 ms budget; 2XL brings
the mean below budget; PaperMC's mean stays lowest at every size while its
ISR grows as the node shrinks.
"""

from conftest import DURATION_S, write_artifact

from repro.analysis import PAPER, fig12_node_sizes
from repro.analysis.hosting import most_common_recommendation
from repro.core.visualization import format_table


def test_fig12_mf5_node_sizes(benchmark, out_dir):
    result = benchmark.pedantic(
        fig12_node_sizes,
        kwargs={"duration_s": max(DURATION_S, 60.0)},
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            r["node"],
            r["server"],
            f"{r['tick_mean_ms']:.1f}",
            f"{r['tick_median_ms']:.1f}",
            f"{r['tick_p75_ms']:.1f}",
            f"{r['isr']:.4f}",
        ]
        for r in result.rows
    ]
    text = format_table(
        ["node", "server", "tick mean", "median", "p75", "ISR"], rows
    )
    ram, vcpus = most_common_recommendation()
    text += (
        f"\n\nTable 7 context: most common hosting recommendation is "
        f"{vcpus} vCPU / {ram:.0f} GB — the L node.  Paper: L insufficient,"
        f" XL better but vanilla/forge mean > 50 ms, 2XL needed; PaperMC"
        f" mean lowest at every size, ISR 0.025 (2XL) -> 0.08 (L)."
    )
    write_artifact("fig12_mf5_node_sizes.txt", text)

    cells = {(r["node"], r["server"]): r for r in result.rows}

    # Bigger nodes monotonically improve vanilla/forge mean tick time.
    for server in ("vanilla", "forge"):
        l = cells[("L", server)]["tick_mean_ms"]
        xl = cells[("XL", server)]["tick_mean_ms"]
        xxl = cells[("2XL", server)]["tick_mean_ms"]
        assert l > xl > xxl, (server, l, xl, xxl)
        # L is far above budget; the gap L -> 2XL is large (paper ~3x,
        # ours >= 1.5x).
        assert l > 1.6 * 50.0, (server, l)
        assert l > 1.5 * xxl, (server, l, xxl)

    # PaperMC has the lowest mean at every size...
    for node in ("L", "XL", "2XL"):
        assert cells[(node, "papermc")]["tick_mean_ms"] == min(
            cells[(node, s)]["tick_mean_ms"]
            for s in ("vanilla", "forge", "papermc")
        ), node
    # ...and its ISR grows as the node shrinks.
    assert (
        cells[("L", "papermc")]["isr"] > cells[("2XL", "papermc")]["isr"]
    )
