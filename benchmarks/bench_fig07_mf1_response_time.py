"""Figure 7 / MF1: performance variability makes MLGs unplayable.

Response-time distributions on AWS for Minecraft and Forge under Control,
Farm, and TNT.  The paper's headline: mean/median look fine while maxima
run 10-20x the mean and far beyond the 118 ms unplayable threshold;
Control's outliers appear right after a player connects.
"""

from conftest import DURATION_S, write_artifact

from repro.analysis import PAPER, fig7_response_times
from repro.core.visualization import format_table
from repro.metrics import UNPLAYABLE_MS


def test_fig7_mf1_response_time(benchmark, out_dir):
    result = benchmark.pedantic(
        fig7_response_times,
        kwargs={"duration_s": DURATION_S},
        rounds=1,
        iterations=1,
    )
    rows = []
    for row in result.rows:
        rows.append(
            [
                row["workload"],
                row["server"],
                f"{row['mean_ms']:.1f}",
                f"{row['median_ms']:.1f}",
                f"{row['p95_ms']:.1f}",
                f"{row['max_ms']:.0f}",
                f"{row['max_over_mean']:.1f}x",
            ]
        )
    text = format_table(
        ["workload", "server", "mean", "median", "p95", "max", "max/mean"],
        rows,
    )
    text += (
        "\n\npaper: Control max 20.7x mean (Forge); TNT max labels 2718/2303"
        " ms; PaperMC omitted (async chat)."
    )
    write_artifact("fig07_mf1_response_time.txt", text)

    by_key = {(r["workload"], r["server"]): r for r in result.rows}

    # MF1 shape 1: the maximum dwarfs the mean under Control (connect
    # spike), by an order of magnitude.
    for server in ("vanilla", "forge"):
        control = by_key[("control", server)]
        assert control["max_over_mean"] > 5.0, (server, control)
        # Mean/median look playable...
        assert control["median_ms"] < UNPLAYABLE_MS
        # ...while the worst case is far beyond unplayable.
        assert control["max_ms"] > 2 * UNPLAYABLE_MS

    # MF1 shape 2: environment workloads degrade the tail further.
    for server in ("vanilla", "forge"):
        assert (
            by_key[("tnt", server)]["p95_ms"]
            > by_key[("farm", server)]["p95_ms"]
            > by_key[("control", server)]["p95_ms"]
        )

    # MF1 shape 3: TNT p95 exceeds the unplayable threshold many times over.
    for server in ("vanilla", "forge"):
        assert by_key[("tnt", server)]["p95_ms"] > 3 * UNPLAYABLE_MS
