"""Figure 11 / MF4: processing entity state is computationally expensive.

Share of tick time attributed to each operation category (Block Add/Remove,
Block Update, Entities, Waits, Other) on AWS.  Paper shapes: entities
dominate non-waiting tick time in every configuration; PaperMC's entity
share is visibly smaller than Minecraft's and Forge's.
"""

from conftest import DURATION_S, write_artifact

from repro.analysis import PAPER, fig11_tick_distribution
from repro.core.visualization import format_table

BUCKETS = (
    "Block Add/Remove",
    "Block Update",
    "Entities",
    "Wait Before",
    "Wait After",
    "Other",
)


def test_fig11_mf4_tick_distribution(benchmark, out_dir):
    result = benchmark.pedantic(
        fig11_tick_distribution,
        kwargs={"duration_s": DURATION_S},
        rounds=1,
        iterations=1,
    )
    rows = []
    for row in result.rows:
        shares = row["shares"]
        rows.append(
            [row["workload"], row["server"]]
            + [f"{100 * shares.get(bucket, 0.0):.1f}%" for bucket in BUCKETS]
            + [f"{100 * row['entity_share_of_non_wait']:.1f}%"]
        )
    text = format_table(
        ["workload", "server", *BUCKETS, "entities (non-wait)"], rows
    )
    text += (
        "\n\npaper: entities account for a majority of non-waiting tick time"
        " in every workload on every server; PaperMC's entity share is much"
        " smaller, especially under TNT."
    )
    write_artifact("fig11_mf4_tick_distribution.txt", text)

    cells = {(r["workload"], r["server"]): r for r in result.rows}

    # Entities dominate non-wait tick time for vanilla/forge on entity-
    # heavy workloads, and remain the largest single bucket on Control.
    for workload in ("farm", "tnt"):
        for server in ("vanilla", "forge"):
            assert (
                cells[(workload, server)]["entity_share_of_non_wait"] > 0.5
            ), (workload, server)

    # PaperMC's entity share is smaller than vanilla's everywhere (MF4's
    # "much smaller proportion of entity calculation time").
    for workload in ("control", "farm", "tnt"):
        assert (
            cells[(workload, "papermc")]["entity_share_of_non_wait"]
            < cells[(workload, "vanilla")]["entity_share_of_non_wait"]
        ), workload

    # TNT increases the entity share for every server, and PaperMC's TNT
    # entity share stays below even vanilla's *Control* share — the
    # "reduction in entity computation" the paper credits for PaperMC's
    # TNT performance.
    for server in ("vanilla", "forge", "papermc"):
        assert (
            cells[("tnt", server)]["entity_share_of_non_wait"]
            > cells[("control", server)]["entity_share_of_non_wait"]
        )
    assert (
        cells[("tnt", "papermc")]["entity_share_of_non_wait"]
        < cells[("tnt", "vanilla")]["entity_share_of_non_wait"] - 0.05
    )
