"""Figure 10 / MF3: MLGs exhibit increased variability in commercial clouds.

Distribution of per-iteration ISR and pooled tick times for the Players
workload on DAS-5, Azure, and AWS.  Paper shapes: DAS-5 has the lowest
median ISR and the smallest IQRs; the minimum cloud ISR exceeds the
maximum DAS-5 ISR; no game is best everywhere (AWS favors Minecraft and
Forge, Azure favors PaperMC); PaperMC on AWS is the worst combination
(median ISR 0.094, median tick 48.98 ms).
"""

from conftest import FIG10_DURATION_S, FIG10_ITERATIONS, write_artifact

from repro.analysis import PAPER, fig10_cloud_variability
from repro.core.visualization import format_table


def test_fig10_mf3_cloud_variability(benchmark, out_dir):
    result = benchmark.pedantic(
        fig10_cloud_variability,
        kwargs={
            "iterations": FIG10_ITERATIONS,
            "duration_s": FIG10_DURATION_S,
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            r["environment"],
            r["server"],
            f"{r['isr_median']:.4f}",
            f"{r['isr_iqr']:.4f}",
            f"{r['tick_median_ms']:.1f}",
            f"{r['tick_iqr_ms']:.1f}",
        ]
        for r in result.rows
    ]
    text = format_table(
        ["environment", "server", "ISR med", "ISR IQR", "tick med", "tick IQR"],
        rows,
    )
    text += (
        "\n\npaper: max DAS-5 ISR 0.021 < min cloud ISR 0.029; PaperMC-AWS"
        " median ISR 0.094 / median tick 48.98 ms; AWS better for"
        " Minecraft+Forge, Azure better for PaperMC."
    )
    write_artifact("fig10_mf3_cloud_variability.txt", text)

    cells = {(r["environment"], r["server"]): r for r in result.rows}
    servers = ("vanilla", "forge", "papermc")

    # DAS-5 is the most stable for every game.
    for server in servers:
        das5 = cells[("das5-2core", server)]
        for cloud in ("azure-d2v3", "aws-t3.large"):
            assert cells[(cloud, server)]["isr_median"] > das5["isr_median"]
            assert cells[(cloud, server)]["tick_iqr_ms"] > das5["tick_iqr_ms"]

    # The minimum cloud ISR exceeds the maximum DAS-5 ISR.  The strict
    # min/max form needs the paper's 50 iterations to be stable; at
    # reduced scale we assert the robust form (every cloud median beats
    # every DAS-5 median with headroom).
    das5_max = max(cells[("das5-2core", s)]["isr_max"] for s in servers)
    cloud_min = min(
        cells[(env, s)]["isr_min"]
        for env in ("azure-d2v3", "aws-t3.large")
        for s in servers
    )
    from conftest import FULL

    if FULL:
        assert cloud_min > das5_max, (cloud_min, das5_max)
    das5_med_max = max(
        cells[("das5-2core", s)]["isr_median"] for s in servers
    )
    cloud_med_min = min(
        cells[(env, s)]["isr_median"]
        for env in ("azure-d2v3", "aws-t3.large")
        for s in servers
    )
    assert cloud_med_min > das5_med_max, (cloud_med_min, das5_med_max)

    # No game is best everywhere: AWS favors vanilla/forge, Azure PaperMC.
    for server in ("vanilla", "forge"):
        assert (
            cells[("aws-t3.large", server)]["isr_median"]
            < cells[("azure-d2v3", server)]["isr_median"]
        ), server
    assert (
        cells[("azure-d2v3", "papermc")]["isr_median"]
        < cells[("aws-t3.large", "papermc")]["isr_median"]
    )

    # PaperMC-on-AWS: the worst AWS citizen, hovering at the tick budget.
    # The strict "highest median ISR" ordering needs the paper's 50
    # iterations; at reduced scale PaperMC must still sit within 20% of
    # the worst AWS median while having by far the highest tick median.
    papermc_aws = cells[("aws-t3.large", "papermc")]
    worst_aws_isr = max(
        cells[("aws-t3.large", s)]["isr_median"] for s in servers
    )
    if FULL:
        assert papermc_aws["isr_median"] == worst_aws_isr
    assert papermc_aws["isr_median"] >= 0.8 * worst_aws_isr
    assert papermc_aws["tick_median_ms"] == max(
        cells[("aws-t3.large", s)]["tick_median_ms"] for s in servers
    )
    assert 35.0 < papermc_aws["tick_median_ms"] < 70.0

    # PaperMC has the lowest median ISR on DAS-5 (paper: 0.007 vs 0.010).
    assert cells[("das5-2core", "papermc")]["isr_median"] == min(
        cells[("das5-2core", s)]["isr_median"] for s in servers
    )
