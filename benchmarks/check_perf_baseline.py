#!/usr/bin/env python
"""Gate the last bench run against the committed perf baseline.

Thin wrapper over :mod:`repro.tracing.perf_baseline` with paths anchored
to this directory, so it works from any CWD (CI runs it right after the
benchmark suite)::

    python benchmarks/check_perf_baseline.py            # gate
    python benchmarks/check_perf_baseline.py --update   # rewrite baseline

Exit codes: 0 OK, 1 perf regression, 2 missing inputs.

Every run (gate or update, pass or fail) appends its verdict — machine
factor plus per-figure deltas and budget ratios — to
``benchmarks/out/perf_history.jsonl``; the campaign report's
perf-trajectory panel reads that history.
"""

import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(BENCH_DIR.parent / "src"))

from repro.tracing.perf_baseline import main  # noqa: E402

if __name__ == "__main__":
    # Anchored defaults first; explicit flags on the command line win
    # (argparse keeps the last occurrence).
    sys.exit(
        main(
            [
                "--runtimes",
                str(BENCH_DIR / "out" / "bench_runtimes.json"),
                "--baseline",
                str(BENCH_DIR / "BENCH_fig11.json"),
            ]
            + sys.argv[1:]
        )
    )
