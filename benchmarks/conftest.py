"""Shared benchmark configuration.

Benchmarks regenerate every table and figure from the paper's evaluation.
Checked-in defaults run reduced-scale experiments to keep the suite's
runtime sane; set ``METERSTICK_FULL=1`` for paper-scale runs (60 s
iterations, 50 iterations for Figure 10).

Artifacts (paper-vs-measured tables and series CSVs) are written to
``benchmarks/out/``.
"""

import os
from pathlib import Path

import pytest

FULL = os.environ.get("METERSTICK_FULL", "0") == "1"

#: Per-iteration duration in simulated seconds.
DURATION_S = 60.0 if FULL else 40.0
#: Figure 10 iteration count (paper: 50).
FIG10_ITERATIONS = 50 if FULL else 6
FIG10_DURATION_S = 60.0 if FULL else 30.0

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUT_DIR


def write_artifact(name: str, text: str) -> Path:
    """Write a rendered figure/table artifact and echo it to stdout."""
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUT_DIR / name
    path.write_text(text)
    print(f"\n=== {name} ===\n{text}")
    return path
