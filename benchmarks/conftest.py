"""Shared benchmark configuration.

Benchmarks regenerate every table and figure from the paper's evaluation.
Checked-in defaults run reduced-scale experiments to keep the suite's
runtime sane; set ``METERSTICK_FULL=1`` for paper-scale runs (60 s
iterations, 50 iterations for Figure 10).

Artifacts (paper-vs-measured tables and series CSVs) are written to
``benchmarks/out/``.
"""

import json
import os
from pathlib import Path

import pytest

FULL = os.environ.get("METERSTICK_FULL", "0") == "1"

#: Per-iteration duration in simulated seconds.
DURATION_S = 60.0 if FULL else 40.0
#: Figure 10 iteration count (paper: 50).
FIG10_ITERATIONS = 50 if FULL else 6
FIG10_DURATION_S = 60.0 if FULL else 30.0

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUT_DIR


def write_artifact(name: str, text: str) -> Path:
    """Write a rendered figure/table artifact and echo it to stdout."""
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUT_DIR / name
    path.write_text(text)
    print(f"\n=== {name} ===\n{text}")
    return path


# -- per-figure runtime deltas -------------------------------------------------
#
# Each session records wall time per benchmark test into
# ``benchmarks/out/bench_runtimes.json`` and, when a previous run's
# artifact exists (restored by the CI cache, or simply left over from the
# last local run), prints a delta table — so entity-kernel speedups (and
# regressions) are visible straight in PR logs.
#
# The *committed* trajectory lives in ``benchmarks/BENCH_fig11.json``:
# ``check_perf_baseline.py`` gates the recorded runtimes against it
# (machine-calibrated, >20% per-figure budget) in CI, and
# ``METERSTICK_UPDATE_BASELINE=1`` rewrites it after an intentional
# perf change.  See ``repro.tracing.perf_baseline``.

RUNTIMES_PATH = OUT_DIR / "bench_runtimes.json"

_durations: dict[str, float] = {}


def pytest_runtest_logreport(report):
    # Sum every passed phase — setup and teardown included, not just
    # call — so fixture-heavy benches (warm world cache, session-scoped
    # campaign fixtures) report their real wall time.
    if not report.passed:
        return
    name = report.nodeid.split("::", 1)[0]
    _durations[name] = _durations.get(name, 0.0) + report.duration


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _durations:
        return
    previous = {}
    if RUNTIMES_PATH.exists():
        try:
            previous = json.loads(RUNTIMES_PATH.read_text())
        except (OSError, ValueError):
            previous = {}
    write = terminalreporter.write_line
    terminalreporter.section("benchmark runtime delta (fast mode)")
    if not previous:
        write("no previous bench_runtimes.json artifact; baseline recorded")
    for name in sorted(_durations):
        current = _durations[name]
        prev = previous.get(name)
        if prev:
            delta = 100.0 * (current - prev) / prev
            write(f"{name:<55} {current:7.2f}s  prev {prev:7.2f}s  {delta:+6.1f}%")
        else:
            write(f"{name:<55} {current:7.2f}s  prev     n/a")
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    RUNTIMES_PATH.write_text(
        json.dumps(_durations, indent=2, sort_keys=True) + "\n"
    )
