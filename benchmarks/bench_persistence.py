"""World persistence: region IO throughput and the autosave tick signature.

Three artifacts:

* region-file write/read throughput (chunks/s and MB/s of raw world
  state, zlib round-trip verified bit-identical),
* the Exploration workload's tick-time distribution with persistence on —
  "Autosave" and "Chunk Load" must both be visible buckets, with the
  full-flush tick spike surfaced next to the p50/p99 tick durations,
* warm-boot vs cold-generation connect cost, using the campaign world
  cache under ``benchmarks/out/world-cache`` (covered by an actions cache
  key in CI, so repeat runs skip the pre-generation entirely).
"""

import time

import numpy as np

from conftest import DURATION_S, OUT_DIR, write_artifact

from repro.core.experiment import run_iteration
from repro.core.visualization import format_table
from repro.mlg.world import World
from repro.mlg.worldgen import TerrainGenerator
from repro.persistence.region import RAW_CHUNK_BYTES
from repro.persistence.store import RegionStore, world_hash
from repro.persistence.warmup import ensure_world_cache

#: Chunk square edge for the throughput micro-benchmark (256 chunks).
THROUGHPUT_EDGE = 16

WORLD_CACHE_ROOT = OUT_DIR / "world-cache"


def _bench_world(tmp_path):
    world = World(generator=TerrainGenerator(seed=42))
    for cx in range(THROUGHPUT_EDGE):
        for cz in range(THROUGHPUT_EDGE):
            world.ensure_chunk(cx, cz)
    return world


def test_region_io_throughput(benchmark, out_dir, tmp_path):
    world = _bench_world(tmp_path)
    chunks = list(world.loaded_chunks())
    raw_mb = len(chunks) * RAW_CHUNK_BYTES / 1e6

    def write_once():
        store = RegionStore(tmp_path / "store")
        store.save_chunks(chunks)
        return store

    store = benchmark.pedantic(write_once, rounds=1, iterations=1)
    t0 = time.perf_counter()
    write_once()
    write_s = time.perf_counter() - t0

    reader = RegionStore(tmp_path / "store")
    t0 = time.perf_counter()
    restored = World(loader=reader.load_chunk)
    for cx, cz in sorted(reader.chunk_positions()):
        restored.ensure_chunk(cx, cz)
    read_s = time.perf_counter() - t0
    assert world_hash(restored) == world_hash(world)  # lossless round trip

    rows = [
        ["chunks", f"{len(chunks)}"],
        ["raw world state", f"{raw_mb:.1f} MB"],
        ["on disk (zlib)", f"{store.bytes_written / 1e6:.2f} MB"],
        [
            "write",
            f"{len(chunks) / write_s:,.0f} chunks/s "
            f"({raw_mb / write_s:.0f} MB/s raw)",
        ],
        [
            "read+inflate+relight-free load",
            f"{len(chunks) / read_s:,.0f} chunks/s "
            f"({raw_mb / read_s:.0f} MB/s raw)",
        ],
    ]
    text = format_table(["metric", "value"], rows)
    text += "\n\nround trip verified bit-identical via world_hash."
    write_artifact("persistence_region_throughput.txt", text)


def test_autosave_spike_tick_distribution(benchmark, out_dir, tmp_path):
    result = benchmark.pedantic(
        run_iteration,
        args=("exploration", "vanilla", "das5-2core"),
        kwargs=dict(
            duration_s=DURATION_S,
            seed=7,
            world_dir=str(tmp_path / "world"),
            autosave_interval_s=10.0,
            autosave_flush_every=3,
            max_loaded_chunks=200,
        ),
        rounds=1,
        iterations=1,
    )
    shares = result.tick_distribution
    active = {
        bucket: share
        for bucket, share in shares.items()
        if not bucket.startswith("Wait")
    }
    world = result.telemetry["world"]
    durs = np.asarray(result.tick_durations_ms)
    rows = [
        [bucket, f"{100 * share:.2f}%"]
        for bucket, share in sorted(active.items(), key=lambda kv: -kv[1])
    ]
    text = format_table(["bucket", "share of non-wait tick time"], rows)
    text += "\n" + format_table(
        ["tick metric", "value"],
        [
            ["p50", f"{np.percentile(durs, 50):.2f} ms"],
            ["p99", f"{np.percentile(durs, 99):.2f} ms"],
            ["max (flush spike)", f"{durs.max():.2f} ms"],
            ["autosaves / full flushes",
             f"{world['autosaves']} / {world['full_flushes']}"],
            ["chunks saved/evicted/reloaded",
             f"{world['chunks_saved']} / {world['chunks_evicted']} / "
             f"{world['chunks_loaded_from_disk']}"],
            ["loaded chunks peak -> final",
             f"{world['peak_loaded_chunks']} -> "
             f"{world['final_loaded_chunks']}"],
        ],
    )
    text += (
        "\n\nexpected: Autosave and Chunk Load are visible buckets; the"
        " periodic full flush drives the max tick well past the p50; the"
        " loaded-chunk count plateaus under eviction."
    )
    write_artifact("persistence_autosave_spikes.txt", text)
    assert shares.get("Autosave", 0.0) > 0.0
    assert shares.get("Chunk Load", 0.0) > 0.0
    assert world["full_flushes"] >= 1
    assert durs.max() > 2.0 * np.percentile(durs, 50)


def test_warm_boot_vs_cold_generation(benchmark, out_dir, tmp_path):
    cache = ensure_world_cache(WORLD_CACHE_ROOT, "control", 1.0, 11)

    def boots():
        cold = run_iteration(
            "control", "vanilla", "das5-2core",
            duration_s=3.0, seed=11, world_dir=str(tmp_path / "cold"),
        )
        warm = run_iteration(
            "control", "vanilla", "das5-2core",
            duration_s=3.0, seed=11, world_cache_dir=str(cache),
        )
        return cold, warm

    cold, warm = benchmark.pedantic(boots, rounds=1, iterations=1)
    cold_w, warm_w = cold.telemetry["world"], warm.telemetry["world"]
    rows = [
        ["initial world hash",
         f"{cold_w['initial_hash']} == {warm_w['initial_hash']}"],
        ["cold connect tick", f"{cold.tick_durations_ms[0]:.1f} ms"],
        ["warm connect tick", f"{warm.tick_durations_ms[0]:.1f} ms"],
        ["chunks from disk (warm)",
         f"{warm_w['chunks_loaded_from_disk']}"],
    ]
    text = format_table(["metric", "value"], rows)
    text += (
        "\n\nexpected: identical initial world hash; the warm boot's"
        " connect burst is several times cheaper than cold generation."
    )
    write_artifact("persistence_warm_boot.txt", text)
    assert warm_w["initial_hash"] == cold_w["initial_hash"]
    assert warm.tick_durations_ms[0] < cold.tick_durations_ms[0]
