"""Obs-plane overhead: the ≤5% contract, measured paired.

The live observability plane (ISSUE 10) promises that serving and
actively scraping the metrics endpoint costs at most 5% wall time over
the identical unobserved campaign.  This bench runs the same tiny
campaign both ways — interleaved A/B reps, an aggressive 20 Hz scraper
hammering the endpoint during the observed reps — and asserts the
contract on the best-of-reps pair (min filters scheduler noise; the
contract is about the plane's cost, not the machine's jitter).

One ``obs_bench`` record lands in ``benchmarks/out/perf_history.jsonl``
so the perf-trajectory panel tracks the overhead over time.
"""

import threading
import time
import urllib.error
import urllib.request

from conftest import OUT_DIR, write_artifact

from repro.campaign import CampaignExecutor, CampaignSpec
from repro.core.visualization import format_table
from repro.tracing.perf_baseline import append_history, history_entry

#: Interleaved measurement pairs (off, on, off, on, ...).
REPS = 3

#: Scrape cadence while an observed rep runs — far harsher than any
#: real Prometheus interval, to make the contract conservative.
SCRAPE_INTERVAL_S = 0.05

#: The promised ceiling: observed wall <= 1.05 x unobserved wall.
OVERHEAD_BUDGET = 0.05

#: Absolute slack for sub-second runs where a single scheduler tick
#: would otherwise dominate the ratio.
ABS_SLACK_S = 0.15


def _spec(out_dir, rep: int, obs: bool) -> CampaignSpec:
    return CampaignSpec(
        name="obs-overhead",
        servers=["vanilla"],
        workloads=["players"],
        environments=["das5-2core"],
        iterations=2,
        duration_s=2.0,
        seed=29,
        obs=obs,
        obs_port=0,
        output_dir=str(out_dir / f"{'on' if obs else 'off'}-{rep}"),
    )


class _Scraper:
    """Poll the endpoint's Prometheus body in a tight loop."""

    def __init__(self) -> None:
        self.url: str | None = None
        self.scrapes = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(SCRAPE_INTERVAL_S):
            if self.url is None:
                continue
            try:
                with urllib.request.urlopen(self.url, timeout=2) as response:
                    response.read()
                self.scrapes += 1
            except (urllib.error.URLError, ConnectionError, OSError):
                continue  # endpoint between chains; keep hammering

    def start(self) -> "_Scraper":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5)


def _timed_run(spec: CampaignSpec, scraper: _Scraper | None) -> float:
    executor = CampaignExecutor(spec)
    if scraper is not None:
        # Feed the scraper the URL as soon as the plane is up: the
        # progress callback fires after the first job, but the endpoint
        # URL is set synchronously by run(), so poll for it briefly.
        def feed():
            deadline = time.monotonic() + 10
            while executor.obs_url is None and time.monotonic() < deadline:
                time.sleep(0.01)
            scraper.url = executor.obs_url

        threading.Thread(target=feed, daemon=True).start()
    t0 = time.perf_counter()
    executor.run()
    return time.perf_counter() - t0


def test_obs_overhead_within_budget(benchmark, out_dir, tmp_path):
    scraper = _Scraper().start()

    def paired():
        off_s, on_s = [], []
        for rep in range(REPS):
            off_s.append(_timed_run(_spec(tmp_path, rep, obs=False), None))
            on_s.append(_timed_run(_spec(tmp_path, rep, obs=True), scraper))
        return off_s, on_s

    try:
        off_s, on_s = benchmark.pedantic(paired, rounds=1, iterations=1)
    finally:
        scraper.stop()

    best_off, best_on = min(off_s), min(on_s)
    overhead = (best_on - best_off) / best_off
    rows = [
        ["reps (paired, interleaved)", f"{REPS}"],
        ["unobserved wall (min)", f"{best_off:.3f} s"],
        ["observed wall (min)", f"{best_on:.3f} s"],
        ["scrapes served", f"{scraper.scrapes}"],
        ["overhead", f"{100.0 * overhead:+.1f}%"],
        ["budget", f"{100.0 * OVERHEAD_BUDGET:.0f}%"],
    ]
    text = format_table(["metric", "value"], rows)
    text += (
        "\n\npaired best-of-reps; the observed runs were scraped at"
        f" {1.0 / SCRAPE_INTERVAL_S:.0f} Hz throughout."
    )
    write_artifact("bench_obs_overhead.txt", text)

    assert scraper.scrapes > 0, "the observed runs were never scraped"
    assert best_on <= best_off * (1.0 + OVERHEAD_BUDGET) + ABS_SLACK_S, (
        f"obs plane overhead {100.0 * overhead:.1f}% exceeds the "
        f"{100.0 * OVERHEAD_BUDGET:.0f}% budget"
    )

    entry = history_entry(
        kind="obs_bench",
        status="ok",
        rows=[
            {
                "figure": "benchmarks/bench_obs_overhead.py::paired",
                "baseline_s": round(best_off, 4),
                "budget_s": round(best_off * (1.0 + OVERHEAD_BUDGET), 4),
                "current_s": round(best_on, 4),
                "status": "ok",
            }
        ],
        machine_factor=1.0,
        tolerance=OVERHEAD_BUDGET,
    )
    append_history(OUT_DIR / "perf_history.jsonl", entry)
